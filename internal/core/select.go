package core

// Compressed-domain predicate evaluation: range predicates are pushed below
// decompression. The value-domain range [lo, hi] is translated into the
// packed code domain once per block, and the generated bitpack select
// kernels then scan the code section directly, producing one 32-bit match
// mask per 32 codes — a MonetDB/X100-style selection vector in bitmap
// form. Only the set bits are ever visited afterwards, so values that fail
// the predicate are never materialized; that is where the bandwidth of a
// selective scan goes today.
//
// Per scheme:
//
//   - PFOR: codes are unsigned offsets from Base, and the code-to-value
//     mapping is monotone over the codable window, so [lo, hi] becomes a
//     code range [clo, clo+span] (subtract the base, clamp to the window).
//     A range that misses the window entirely reduces the scan to a walk
//     of the patch lists.
//   - PDICT: the predicate is remapped into dictionary-code space once per
//     block. When the matching codes happen to form a contiguous range the
//     range kernels run as for PFOR; otherwise a per-code bitmap is built
//     and membership is tested branch-free after unpacking.
//   - PFOR-DELTA: codes are differences, so a value predicate has no fixed
//     code image; each group falls back to a fused decode+compare over the
//     group's running sum (prefix-sum-aware: the per-group Totals keep the
//     decode self-contained).
//
// Exception slots carry bogus patch-list gap codes, so their mask bits are
// cleared and every exception is judged on its true value from the
// exception section; matching exceptions are merged back in position order
// while walking the masks.

import (
	"math/bits"
	"slices"

	"repro/internal/bitpack"
)

// Aggregate summarizes the values of one block that fall inside a range.
// Sum is the two's-complement (wrapping) sum of int64(v); Min and Max are
// only meaningful when Count > 0.
type Aggregate[T Integer] struct {
	Count int
	Sum   int64
	Min   T
	Max   T
}

// add folds one matching value into the aggregate.
func (a *Aggregate[T]) add(v T) {
	if a.Count == 0 {
		a.Min, a.Max = v, v
	} else {
		if v < a.Min {
			a.Min = v
		}
		if v > a.Max {
			a.Max = v
		}
	}
	a.Count++
	a.Sum += int64(v)
}

// Merge folds another aggregate (e.g. a different block's) into a.
func (a *Aggregate[T]) Merge(b Aggregate[T]) {
	if b.Count == 0 {
		return
	}
	if a.Count == 0 {
		*a = b
		return
	}
	if b.Min < a.Min {
		a.Min = b.Min
	}
	if b.Max > a.Max {
		a.Max = b.Max
	}
	a.Count += b.Count
	a.Sum += b.Sum
}

// selScratch is the block-level selection scratch. It lives in the Decoder
// so steady-state filtered scans allocate nothing.
type selScratch[T Integer] struct {
	mask []uint32         // one match bit per value, (N+31)/32 words
	epos [GroupSize]int32 // block-absolute positions of matching exceptions
	eval [GroupSize]T     // their true values, parallel to epos
	xpos [GroupSize]int32 // all exception positions of one group, in order
	vbuf [GroupSize]T     // decoded group values (PFOR-DELTA fallback)
	bm   []uint64         // PDICT code-match bitmap, 1<<B bits
}

// pforCodeRange translates the value-domain range [lo, hi] (lo <= hi) into
// PFOR's code domain: the codes c with Base+T(c) in [lo, hi] are exactly
// [clo, clo+span] when ok, and none otherwise. Non-exception values never
// wrap past the base (the compressor classifies those as exceptions), so
// the mapping is monotone and exceptions are judged separately on their
// true values.
func pforCodeRange[T Integer](base T, b uint, lo, hi T) (clo, span uint32, ok bool) {
	if hi < base {
		return 0, 0, false
	}
	mask := typeMask[T]()
	maxc := maxCode(b)
	dhi := uint64(hi-base) & mask
	if dhi > maxc {
		dhi = maxc
	}
	var dlo uint64
	if lo > base {
		dlo = uint64(lo-base) & mask
	}
	if dlo > dhi {
		return 0, 0, false
	}
	return uint32(dlo), uint32(dhi - dlo), true
}

// groupBounds returns the half-open value range of group g.
func groupBounds[T Integer](blk *Block[T], g int) (start, end int) {
	start = g * GroupSize
	end = start + GroupSize
	if end > blk.N {
		end = blk.N
	}
	return start, end
}

// excPositions walks group g's patch list and writes the block-absolute
// position of every exception to out, returning the filled prefix. The
// gaps live in the code slots, so each hop extracts one packed code.
func (d *Decoder[T]) excPositions(blk *Block[T], g int, out *[GroupSize]int32) []int32 {
	es, ee := blk.groupExc(g)
	if es == ee {
		return out[:0]
	}
	pos := g*GroupSize + blk.patchStart(g)
	n := 0
	for k := es; k < ee; k++ {
		out[n] = int32(pos)
		n++
		pos += int(bitpack.CodeAt(blk.Codes, pos, blk.B)) + 1
	}
	return out[:n]
}

// maskBuf sizes the scratch mask to cover n values and returns it.
func (s *selScratch[T]) maskBuf(n int) []uint32 {
	words := (n + 31) / 32
	if cap(s.mask) < words {
		s.mask = make([]uint32, words)
	}
	s.mask = s.mask[:words]
	return s.mask
}

// fixExceptions resolves group g's exception slots against the match
// masks: the bogus gap codes have their mask bits cleared, and each
// exception is judged on its true value, filling s.epos/s.eval with the
// matches in position order.
func (d *Decoder[T]) fixExceptions(blk *Block[T], g int, lo, hi T, mask []uint32, s *selScratch[T]) (matched []int32) {
	all := d.excPositions(blk, g, &s.xpos)
	es, _ := blk.groupExc(g)
	n := 0
	for i, pos := range all {
		mask[pos>>5] &^= 1 << (uint(pos) & 31)
		ev := blk.Exc[es+i]
		if ev >= lo && ev <= hi {
			s.epos[n] = pos
			s.eval[n] = ev
			n++
		}
	}
	return s.epos[:n]
}

// blockMasks runs the select kernels over the whole code section, filling
// mask — sized for blk.N — with one match bit per value (tail handled by
// the scalar path). When codable is false no code can match and the masks
// are cleared.
func (d *Decoder[T]) blockMasks(blk *Block[T], clo, span uint32, codable bool, mask []uint32) {
	if !codable {
		clear(mask)
		return
	}
	groups := blk.N / 32
	bitpack.SelectMask(mask[:groups], blk.Codes, blk.B, clo, span)
	if tail := blk.N % 32; tail > 0 {
		mask[groups] = bitpack.SelectMaskTail(blk.Codes[groups*int(blk.B):], tail, blk.B, clo, span)
	}
}

// bitmapMasks is blockMasks for a non-contiguous PDICT predicate: each
// group is unpacked and its codes tested against the per-code bitmap.
func (d *Decoder[T]) bitmapMasks(blk *Block[T], mask []uint32, s *selScratch[T]) {
	raw := d.scratch(GroupSize)
	bm := s.bm
	numGroups := blk.NumGroups()
	for g := 0; g < numGroups; g++ {
		gStart, gEnd := groupBounds(blk, g)
		n := gEnd - gStart
		unpackGroup(blk, g, n, raw)
		mw := mask[gStart>>5:]
		i := 0
		for ; i+32 <= n; i += 32 {
			var m uint32
			for j := 0; j < 32; j++ {
				c := raw[i+j]
				m |= uint32(bm[c>>6]>>(c&63)&1) << j
			}
			mw[i>>5] = m
		}
		if i < n {
			var m uint32
			for j := 0; i+j < n; j++ {
				c := raw[i+j]
				m |= uint32(bm[c>>6]>>(c&63)&1) << j
			}
			mw[i>>5] = m
		}
	}
}

// DecompressWhere appends the block-relative position and value of every
// element of blk inside the inclusive range [lo, hi] to sel and vals, in
// position order, and returns the extended slices. Non-matching values are
// never materialized; exception slots are judged on their true values. An
// inverted range (lo > hi) selects nothing.
func (d *Decoder[T]) DecompressWhere(blk *Block[T], lo, hi T, sel []int32, vals []T) ([]int32, []T) {
	if lo > hi || blk.N == 0 {
		return sel, vals
	}
	// Pre-size once and emit through indexed stores: per-match appends
	// would reload and spill two slice headers on every match, which at
	// moderate selectivities costs more than the compare kernels
	// themselves.
	k := len(sel)
	sel = slices.Grow(sel, blk.N)[:k+blk.N]
	vals = slices.Grow(vals, blk.N)[:k+blk.N]
	s := d.selectScratch()
	switch blk.Scheme {
	case SchemePFOR:
		clo, span, ok := pforCodeRange(blk.Base, blk.B, lo, hi)
		d.blockMasks(blk, clo, span, ok, s.maskBuf(blk.N))
		k = d.emitMatches(blk, lo, hi, sel, vals, k, s)
	case SchemePDict:
		clo, span, ok, contiguous := d.pdictCodeMatch(blk, lo, hi, s)
		if contiguous {
			d.blockMasks(blk, clo, span, ok, s.maskBuf(blk.N))
		} else {
			d.bitmapMasks(blk, s.maskBuf(blk.N), s)
		}
		k = d.emitMatches(blk, lo, hi, sel, vals, k, s)
	case SchemePFORDelta:
		k = d.selectPFORDelta(blk, lo, hi, sel, vals, k, s)
	default:
		panic("core: cannot select on scheme " + blk.Scheme.String())
	}
	return sel[:k], vals[:k]
}

// emitMatches converts the match masks into the (position, value) output
// streams starting at cursor k, fixing up exception groups along the way,
// and returns the advanced cursor. Groups whose mask words are all zero
// and that hold no exceptions are skipped wholesale.
func (d *Decoder[T]) emitMatches(blk *Block[T], lo, hi T, sel []int32, vals []T, k int, s *selScratch[T]) int {
	pdict := blk.Scheme == SchemePDict
	dict := blk.Dict
	base := blk.Base
	b := blk.B
	codes := blk.Codes
	numGroups := blk.NumGroups()
	for g := 0; g < numGroups; g++ {
		gStart, gEnd := groupBounds(blk, g)
		w0, w1 := gStart>>5, (gEnd+31)>>5
		es, ee := blk.groupExc(g)
		if es == ee {
			// No exceptions: the masks are final.
			for w := w0; w < w1; w++ {
				vb := int32(w << 5)
				for m := s.mask[w]; m != 0; m &= m - 1 {
					p := vb + int32(bits.TrailingZeros32(m))
					c := bitpack.CodeAt(codes, int(p), b)
					sel[k] = p
					if pdict {
						vals[k] = dict[c]
					} else {
						vals[k] = base + T(c)
					}
					k++
				}
			}
			continue
		}
		epos := d.fixExceptions(blk, g, lo, hi, s.mask, s)
		xi := 0
		for w := w0; w < w1; w++ {
			vb := int32(w << 5)
			for m := s.mask[w]; m != 0; m &= m - 1 {
				p := vb + int32(bits.TrailingZeros32(m))
				for xi < len(epos) && epos[xi] < p {
					sel[k], vals[k] = epos[xi], s.eval[xi]
					k++
					xi++
				}
				c := bitpack.CodeAt(codes, int(p), b)
				sel[k] = p
				if pdict {
					vals[k] = dict[c]
				} else {
					vals[k] = base + T(c)
				}
				k++
			}
		}
		for ; xi < len(epos); xi++ {
			sel[k], vals[k] = epos[xi], s.eval[xi]
			k++
		}
	}
	return k
}

// selectPFORDelta is the fused decode+compare fallback: deltas have no
// fixed code image of a value range, so each group is decoded through its
// running total and compared in place. The filter loop is predicated —
// every slot is written at the cursor, which only advances on a match —
// so selectivity costs no branch mispredictions.
func (d *Decoder[T]) selectPFORDelta(blk *Block[T], lo, hi T, sel []int32, vals []T, k int, s *selScratch[T]) int {
	raw := d.scratch(GroupSize)
	numGroups := blk.NumGroups()
	for g := 0; g < numGroups; g++ {
		gStart, gEnd := groupBounds(blk, g)
		n := gEnd - gStart
		unpackGroup(blk, g, n, raw)
		decompressPFORDeltaGroup(blk, g, raw, s.vbuf[:n])
		for i := 0; i < n; i++ {
			v := s.vbuf[i]
			sel[k] = int32(gStart + i)
			vals[k] = v
			k += b2i(v >= lo && v <= hi)
		}
	}
	return k
}

// pdictCodeMatch remaps [lo, hi] into dictionary-code space. When the
// matching codes form one contiguous range it returns (clo, span, ok,
// contiguous=true) so the packed range kernels apply; otherwise it builds
// the per-code bitmap in s.bm (1<<B bits; codes >= DictLen never match —
// they only occur as bogus gap codes on exception slots) and returns
// contiguous=false. ok=false means no dictionary entry matches at all.
func (d *Decoder[T]) pdictCodeMatch(blk *Block[T], lo, hi T, s *selScratch[T]) (clo, span uint32, ok, contiguous bool) {
	first, last := -1, -1
	count := 0
	for c := 0; c < blk.DictLen; c++ {
		v := blk.Dict[c]
		if v >= lo && v <= hi {
			if first < 0 {
				first = c
			}
			last = c
			count++
		}
	}
	if count == 0 {
		return 0, 0, false, true
	}
	if last-first+1 == count {
		return uint32(first), uint32(last - first), true, true
	}
	words := (1<<blk.B + 63) / 64
	if cap(s.bm) < words {
		s.bm = make([]uint64, words)
	}
	s.bm = s.bm[:words]
	clear(s.bm)
	for c := 0; c < blk.DictLen; c++ {
		v := blk.Dict[c]
		if v >= lo && v <= hi {
			s.bm[c>>6] |= 1 << (uint(c) & 63)
		}
	}
	return 0, 0, true, false
}

// AggregateWhere computes Count, Sum, Min and Max over the values of blk
// inside [lo, hi] without materializing them. For PFOR the aggregate is
// derived from the matching codes alone (Count by mask popcount, Sum as
// Count*Base plus the code sum, Min/Max through the monotone code-to-value
// mapping) — codes are never widened to T; PDICT folds dictionary values
// per matching code; PFOR-DELTA falls back to the fused group decode.
// Exceptions are folded on their true values.
func (d *Decoder[T]) AggregateWhere(blk *Block[T], lo, hi T) Aggregate[T] {
	var agg Aggregate[T]
	if lo > hi || blk.N == 0 {
		return agg
	}
	s := d.selectScratch()
	switch blk.Scheme {
	case SchemePFOR:
		clo, span, ok := pforCodeRange(blk.Base, blk.B, lo, hi)
		d.blockMasks(blk, clo, span, ok, s.maskBuf(blk.N))
		d.aggregateMasks(blk, lo, hi, &agg, s)
	case SchemePDict:
		clo, span, ok, contiguous := d.pdictCodeMatch(blk, lo, hi, s)
		if contiguous {
			d.blockMasks(blk, clo, span, ok, s.maskBuf(blk.N))
		} else {
			d.bitmapMasks(blk, s.maskBuf(blk.N), s)
		}
		d.aggregateMasks(blk, lo, hi, &agg, s)
	case SchemePFORDelta:
		raw := d.scratch(GroupSize)
		numGroups := blk.NumGroups()
		for g := 0; g < numGroups; g++ {
			gStart, gEnd := groupBounds(blk, g)
			n := gEnd - gStart
			unpackGroup(blk, g, n, raw)
			decompressPFORDeltaGroup(blk, g, raw, s.vbuf[:n])
			for i := 0; i < n; i++ {
				if v := s.vbuf[i]; v >= lo && v <= hi {
					agg.add(v)
				}
			}
		}
	default:
		panic("core: cannot aggregate scheme " + blk.Scheme.String())
	}
	return agg
}

// aggregateMasks folds the masked matches of a PFOR or PDICT block.
// Aggregation is order-free, so exceptions fold independently — no
// position merge. The PFOR leg accumulates raw codes (popcount, code sum,
// code min/max) and derives the value aggregate once at the end.
func (d *Decoder[T]) aggregateMasks(blk *Block[T], lo, hi T, agg *Aggregate[T], s *selScratch[T]) {
	pfor := blk.Scheme == SchemePFOR
	dict := blk.Dict
	b := blk.B
	codes := blk.Codes
	var codeCount int
	var codeSum uint64
	minC, maxC := ^uint32(0), uint32(0)
	numGroups := blk.NumGroups()
	for g := 0; g < numGroups; g++ {
		gStart, gEnd := groupBounds(blk, g)
		w0, w1 := gStart>>5, (gEnd+31)>>5
		if es, ee := blk.groupExc(g); es != ee {
			epos := d.fixExceptions(blk, g, lo, hi, s.mask, s)
			for i := range epos {
				agg.add(s.eval[i])
			}
		}
		for w := w0; w < w1; w++ {
			m := s.mask[w]
			if m == 0 {
				continue
			}
			vb := w << 5
			codeCount += bits.OnesCount32(m)
			for ; m != 0; m &= m - 1 {
				p := vb + bits.TrailingZeros32(m)
				c := bitpack.CodeAt(codes, p, b)
				if pfor {
					codeSum += uint64(c)
					if c < minC {
						minC = c
					}
					if c > maxC {
						maxC = c
					}
				} else {
					agg.add(dict[c])
				}
			}
		}
	}
	if pfor && codeCount > 0 {
		agg.Merge(Aggregate[T]{
			Count: codeCount,
			Sum:   int64(codeCount)*int64(blk.Base) + int64(codeSum),
			Min:   blk.Base + T(minC),
			Max:   blk.Base + T(maxC),
		})
	}
}

// selectScratch lazily allocates the decoder's selection scratch; one
// allocation per Decoder lifetime keeps steady-state filtered scans
// allocation-free.
func (d *Decoder[T]) selectScratch() *selScratch[T] {
	if d.sel == nil {
		d.sel = new(selScratch[T])
	}
	return d.sel
}

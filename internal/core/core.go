// Package core implements the paper's primary contribution: the "patched"
// super-scalar compression family PFOR, PFOR-DELTA and PDICT (Zukowski,
// Héman, Nes, Boncz: "Super-Scalar RAM-CPU Cache Compression", ICDE 2006).
//
// All three schemes classify input values as either coded values — small
// integers of a fixed bit width b — or exception values stored verbatim.
// Instead of escaping exceptions with a reserved code (the NAIVE scheme,
// kept here as a baseline), the code slot of each exception stores the
// distance to the next exception, forming a linked "patch" list. Decoding
// then runs as two tight, branch-free loops: LOOP1 decodes every slot
// regardless, LOOP2 walks the patch list and overwrites the bogus values
// with the stored exceptions.
//
// Every GroupSize (128) values an entry point restarts the patch list and
// records where that group's exceptions start, enabling fine-grained access
// to single values without decompressing the whole block (Section 3.1,
// "Fine-Grained Access").
package core

import (
	"fmt"
	"unsafe"

	"repro/internal/bitpack"
)

// GroupSize is the entry-point granularity: the patch list restarts every
// GroupSize values, and one entry-point word is stored per group. The paper
// fixes this at 128 ("For every 128 values...").
const GroupSize = 128

// MaxBlockValues bounds a block so exception offsets fit the 25-bit field of
// an entry-point word (Section 3.1: "25-bits exception codes limit our
// segments to a maximum of 32MB").
const MaxBlockValues = 1 << 25

// Integer is the set of element types the codecs operate on. The paper
// implements its algorithms "for all (applicable) datatypes"; these are the
// fixed-width integer columns of a column store (dates, keys, decimals
// scaled to integers, dictionary codes...).
type Integer interface {
	~int8 | ~int16 | ~int32 | ~int64 | ~uint8 | ~uint16 | ~uint32 | ~uint64
}

// Scheme identifies a compression method.
type Scheme uint8

const (
	// SchemeNone stores values verbatim.
	SchemeNone Scheme = iota
	// SchemePFOR is Patched Frame-of-Reference: codes are unsigned offsets
	// from a per-block base value; values below the base or too far above
	// it become exceptions.
	SchemePFOR
	// SchemePFORDelta applies PFOR to the differences between subsequent
	// values; decompression patches first, then computes the running sum.
	SchemePFORDelta
	// SchemePDict is Patched Dictionary compression: codes index a
	// dictionary; values outside the dictionary become exceptions.
	SchemePDict
)

// String returns the scheme name as used in the paper.
func (s Scheme) String() string {
	switch s {
	case SchemeNone:
		return "NONE"
	case SchemePFOR:
		return "PFOR"
	case SchemePFORDelta:
		return "PFOR-DELTA"
	case SchemePDict:
		return "PDICT"
	}
	return fmt.Sprintf("Scheme(%d)", uint8(s))
}

// Block is one compressed block of values: the in-memory form of the
// compressed segment of Figure 3 (header fields, entry points, code section,
// exception section). The segment package serializes blocks to the on-page
// byte layout; this package owns the (de)compression kernels.
type Block[T Integer] struct {
	Scheme Scheme
	B      uint // code bit width, 1..32
	N      int  // number of values

	// Base is the frame-of-reference value (PFOR) or the value preceding
	// the first delta (PFOR-DELTA).
	Base T
	// DeltaBase is subtracted from each delta before coding (PFOR-DELTA
	// only); it plays the role Base plays for plain PFOR, allowing slightly
	// negative deltas to stay codable.
	DeltaBase T

	// Dict is the PDICT dictionary, padded with zero values to exactly
	// 1<<B entries so that LOOP1 can index it with any b-bit code — the
	// bogus codes at exception slots (patch-list gaps) then read garbage
	// instead of faulting, and LOOP2 overwrites the result.
	Dict    []T
	DictLen int // number of meaningful dictionary entries

	// Codes is the bit-packed code section: N codes of B bits each.
	Codes []uint32
	// Exc is the exception section in position order. (On disk it grows
	// backwards from the end of the segment; in memory order is forward.)
	Exc []T
	// Entries holds one word per 128-value group:
	// bits 0..6  = offset of the group's first exception (patch start),
	// bits 7..31 = index into Exc of the group's first exception.
	// A group with no exceptions has the same exception index as its
	// successor; the patch-start bits are then meaningless.
	Entries []uint32
	// Totals (PFOR-DELTA only) stores the running total just before each
	// group, so fine-grained access decodes at most one group.
	Totals []T
}

// NumGroups returns the number of 128-value groups in the block.
func (b *Block[T]) NumGroups() int { return (b.N + GroupSize - 1) / GroupSize }

// ExceptionCount returns the number of exception values (including
// compulsory exceptions).
func (b *Block[T]) ExceptionCount() int { return len(b.Exc) }

// ExceptionRate returns the effective exception rate E' (exceptions per
// value, including compulsory exceptions).
func (b *Block[T]) ExceptionRate() float64 {
	if b.N == 0 {
		return 0
	}
	return float64(len(b.Exc)) / float64(b.N)
}

// groupExc returns the half-open range of indices into Exc that belong to
// group g.
func (b *Block[T]) groupExc(g int) (start, end int) {
	start = int(b.Entries[g] >> 7)
	if g+1 < len(b.Entries) {
		end = int(b.Entries[g+1] >> 7)
	} else {
		end = len(b.Exc)
	}
	return start, end
}

// patchStart returns the in-group offset of the first exception of group g.
// Only meaningful if the group has exceptions.
func (b *Block[T]) patchStart(g int) int { return int(b.Entries[g] & 0x7F) }

// CompressedBytes returns the compressed size of the block in bytes,
// counting the per-block header at the size the segment serializer uses.
// This is the denominator of the paper's compression ratios.
func (b *Block[T]) CompressedBytes() int {
	var v T
	elem := int(unsafe.Sizeof(v))
	size := headerBytes        // fixed header
	size += len(b.Entries) * 4 // entry-point section
	size += len(b.Codes) * 4   // code section
	size += len(b.Exc) * elem  // exception section
	size += b.DictLen * elem   // dictionary (PDICT)
	size += len(b.Totals) * elem
	return size
}

// UncompressedBytes returns the size the block's values occupy uncoded.
func (b *Block[T]) UncompressedBytes() int {
	var v T
	return b.N * int(unsafe.Sizeof(v))
}

// Ratio returns the compression ratio (uncompressed / compressed).
func (b *Block[T]) Ratio() float64 {
	c := b.CompressedBytes()
	if c == 0 {
		return 0
	}
	return float64(b.UncompressedBytes()) / float64(c)
}

// headerBytes is the serialized fixed-header size used in size accounting
// (scheme, width, count, base, section offsets — see internal/segment).
const headerBytes = 44

// typeMask returns the bit mask covering T's width, used to interpret
// wrapped differences as exact unsigned distances.
func typeMask[T Integer]() uint64 {
	var v T
	bits := uint(unsafe.Sizeof(v)) * 8
	if bits >= 64 {
		return ^uint64(0)
	}
	return 1<<bits - 1
}

// typeBits returns the width of T in bits.
func typeBits[T Integer]() uint {
	var v T
	return uint(unsafe.Sizeof(v)) * 8
}

// maxCode returns the largest code representable in b bits.
func maxCode(b uint) uint64 {
	if b >= 64 {
		return ^uint64(0)
	}
	return 1<<b - 1
}

func checkWidth[T Integer](b uint) {
	if b < 1 || b > bitpack.MaxBits {
		panic(fmt.Sprintf("core: bit width %d out of range [1,%d]", b, bitpack.MaxBits))
	}
	if b > typeBits[T]() {
		panic(fmt.Sprintf("core: bit width %d wider than element type (%d bits)", b, typeBits[T]()))
	}
}

func checkLen(n int) {
	if n > MaxBlockValues {
		panic(fmt.Sprintf("core: block of %d values exceeds MaxBlockValues (%d)", n, MaxBlockValues))
	}
}

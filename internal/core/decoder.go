package core

import (
	"fmt"

	"repro/internal/bitpack"
)

// Decoder decompresses blocks while reusing its internal scratch buffer for
// the unpacked raw codes, so steady-state decompression performs no heap
// allocation. A Decoder is not safe for concurrent use; create one per
// goroutine.
type Decoder[T Integer] struct {
	raw []uint32
	// sel holds the compressed-domain selection scratch (select.go),
	// allocated on first DecompressWhere/AggregateWhere.
	sel *selScratch[T]
}

// Decompress decodes all of blk into dst, which must hold blk.N values.
// It returns dst[:blk.N].
func (d *Decoder[T]) Decompress(blk *Block[T], dst []T) []T {
	if len(dst) < blk.N {
		panic(fmt.Sprintf("core: dst holds %d values, block has %d", len(dst), blk.N))
	}
	raw := d.scratch(blk.N)
	bitpack.Unpack(raw, blk.Codes, blk.B)
	switch blk.Scheme {
	case SchemePFOR:
		decompressPFOR(blk, raw, dst)
	case SchemePFORDelta:
		decompressPFORDelta(blk, raw, dst)
	case SchemePDict:
		decompressPDict(blk, raw, dst)
	default:
		panic("core: cannot decompress scheme " + blk.Scheme.String())
	}
	return dst[:blk.N]
}

// DecompressRange decodes values [lo,hi) of blk into dst — the vector-wise
// access pattern of the RAM-CPU cache architecture, where the execution
// engine pulls one CPU-cache-sized vector at a time. lo and hi must be
// multiples of GroupSize (or hi == blk.N); this matches ColumnBM's vector
// granularity.
func (d *Decoder[T]) DecompressRange(blk *Block[T], dst []T, lo, hi int) []T {
	if lo%GroupSize != 0 || (hi%GroupSize != 0 && hi != blk.N) || lo < 0 || hi > blk.N || lo > hi {
		panic(fmt.Sprintf("core: bad range [%d,%d) for block of %d", lo, hi, blk.N))
	}
	if len(dst) < hi-lo {
		panic("core: dst too small")
	}
	gLo, gHi := lo/GroupSize, (hi+GroupSize-1)/GroupSize
	raw := d.scratch(GroupSize)
	out := dst[:0]
	for g := gLo; g < gHi; g++ {
		n := d.decompressGroup(blk, g, raw, dst[len(out):])
		out = dst[:len(out)+n]
	}
	return out
}

// decompressGroup decodes group g into dst and returns the group length.
func (d *Decoder[T]) decompressGroup(blk *Block[T], g int, raw []uint32, dst []T) int {
	gStart := g * GroupSize
	gEnd := gStart + GroupSize
	if gEnd > blk.N {
		gEnd = blk.N
	}
	n := gEnd - gStart
	unpackGroup(blk, g, n, raw)

	switch blk.Scheme {
	case SchemePFOR:
		base := blk.Base
		for i := 0; i < n; i++ {
			dst[i] = base + T(raw[i])
		}
		patchOneGroup(blk, g, raw, dst)
	case SchemePDict:
		dict := blk.Dict
		for i := 0; i < n; i++ {
			dst[i] = dict[raw[i]]
		}
		patchOneGroup(blk, g, raw, dst)
	case SchemePFORDelta:
		decompressPFORDeltaGroup(blk, g, raw, dst)
	default:
		panic("core: cannot decompress scheme " + blk.Scheme.String())
	}
	return n
}

// patchOneGroup applies LOOP2 for a single group with group-relative raw
// codes.
func patchOneGroup[T Integer](blk *Block[T], g int, raw []uint32, dst []T) {
	es, ee := blk.groupExc(g)
	if es == ee {
		return
	}
	pos := blk.patchStart(g)
	for k := es; k < ee; k++ {
		dst[pos] = blk.Exc[k]
		pos += int(raw[pos]) + 1
	}
}

// unpackGroup unpacks the n codes of group g into raw (group-relative).
// Groups are 128 values and widths divide the 32-value kernel granularity,
// so a group always starts on a word boundary: offset = g*128*b/32 = 4*g*b.
func unpackGroup[T Integer](blk *Block[T], g, n int, raw []uint32) {
	word := 4 * g * int(blk.B)
	bitpack.Unpack(raw[:n], blk.Codes[word:], blk.B)
}

// Get returns the single value at position x without decompressing the
// block: the finegrained_decompress routine of Section 3.1. For PFOR and
// PDICT it walks at most one group's patch list (≈ E'*128/2 iterations on
// average); for PFOR-DELTA it decodes the enclosing 128-value group.
func (d *Decoder[T]) Get(blk *Block[T], x int) T {
	if x < 0 || x >= blk.N {
		panic(fmt.Sprintf("core: index %d out of range [0,%d)", x, blk.N))
	}
	g := x / GroupSize
	off := x % GroupSize

	if blk.Scheme == SchemePFORDelta {
		raw := d.scratch(GroupSize)
		gStart := g * GroupSize
		gEnd := min(gStart+GroupSize, blk.N)
		unpackGroup(blk, g, gEnd-gStart, raw)
		var vbuf [GroupSize]T
		decompressPFORDeltaGroup(blk, g, raw[:gEnd-gStart], vbuf[:])
		return vbuf[off]
	}

	es, ee := blk.groupExc(g)
	if es != ee {
		// Walk the linked exception list until we pass position off.
		p := blk.patchStart(g)
		for k := es; k < ee && p <= off; k++ {
			if p == off {
				return blk.Exc[k]
			}
			p += int(d.codeAt(blk, g*GroupSize+p)) + 1
		}
	}
	c := d.codeAt(blk, x)
	switch blk.Scheme {
	case SchemePFOR:
		return blk.Base + T(c)
	case SchemePDict:
		return blk.Dict[c]
	}
	panic("core: cannot access scheme " + blk.Scheme.String())
}

// codeAt extracts the b-bit code at position x directly from the packed
// code section.
func (d *Decoder[T]) codeAt(blk *Block[T], x int) uint32 {
	return bitpack.CodeAt(blk.Codes, x, blk.B)
}

func (d *Decoder[T]) scratch(n int) []uint32 {
	if cap(d.raw) < n {
		d.raw = make([]uint32, n)
	}
	return d.raw[:n]
}

// Decompress is the convenience form of Decoder.Decompress for callers that
// do not reuse a decoder.
func Decompress[T Integer](blk *Block[T], dst []T) []T {
	var d Decoder[T]
	return d.Decompress(blk, dst)
}

// Get is the convenience form of Decoder.Get.
func Get[T Integer](blk *Block[T], x int) T {
	var d Decoder[T]
	return d.Get(blk, x)
}

package core

// This file implements PDICT (Patched Dictionary Compression). Integer
// codes index an array of values (the dictionary). Unlike plain dictionary
// compression — which needs log2(|D|) bits even when the frequency
// distribution is highly skewed — PDICT keeps only the frequent values in
// the dictionary and stores infrequent ones as exceptions, strongly
// reducing the coded domain on skewed data.

// CompressPDict compresses src against dict using code width b. dict must
// hold at most 1<<b distinct values; values of src not present in dict
// become exceptions. Dictionaries are typically produced by AnalyzePDict,
// which fills them with the most frequent sample values.
func CompressPDict[T Integer](src []T, dict []T, b uint) *Block[T] {
	checkWidth[T](b)
	checkLen(len(src))
	if len(dict) > 1<<b {
		panic("core: dictionary larger than code space")
	}
	blk := &Block[T]{Scheme: SchemePDict, B: b, N: len(src), DictLen: len(dict)}
	// Pad the dictionary to the full code space so LOOP1 can index it with
	// the bogus gap codes sitting at exception slots.
	blk.Dict = make([]T, 1<<b)
	copy(blk.Dict, dict)

	lk := newDictLookup(dict)
	codes := make([]uint32, len(src))
	miss := make([]int32, len(src))
	j := 0
	for i := 0; i < len(src); i++ {
		code, ok := lk.find(src[i])
		codes[i] = code
		miss[j] = int32(i)
		j += b2i(!ok)
	}
	finishBlock(blk, codes, miss[:j], func(pos int) T { return src[pos] })
	return blk
}

// decompressPDict decodes via dictionary lookup (LOOP1), then patches.
func decompressPDict[T Integer](blk *Block[T], raw []uint32, dst []T) {
	dict := blk.Dict
	for i, c := range raw[:blk.N] {
		dst[i] = dict[c]
	}
	patchGroups(blk, raw, dst)
}

// dictLookup maps values to their dictionary codes. The paper uses an
// unspecified "super-scalar perfect hash function" built at analysis time;
// we substitute an open-addressing table sized to keep probe chains short
// (documented in DESIGN.md §3). Lookup of a missing value terminates at the
// first empty slot.
type dictLookup[T Integer] struct {
	keys  []T
	codes []int32 // -1 = empty
	mask  uint64
}

func newDictLookup[T Integer](dict []T) *dictLookup[T] {
	size := 16
	for size < 4*len(dict) {
		size *= 2
	}
	lk := &dictLookup[T]{
		keys:  make([]T, size),
		codes: make([]int32, size),
		mask:  uint64(size - 1),
	}
	for i := range lk.codes {
		lk.codes[i] = -1
	}
	tm := typeMask[T]()
	for code, v := range dict {
		h := mix64(uint64(v)&tm) & lk.mask
		for lk.codes[h] >= 0 {
			if lk.keys[h] == v {
				panic("core: duplicate dictionary value")
			}
			h = (h + 1) & lk.mask
		}
		lk.keys[h] = v
		lk.codes[h] = int32(code)
	}
	return lk
}

// find returns the code for v, or (garbage, false) when v is not in the
// dictionary. The garbage code is harmless: exception slots are overwritten
// with patch-list gaps by finishBlock.
func (lk *dictLookup[T]) find(v T) (uint32, bool) {
	tm := typeMask[T]()
	h := mix64(uint64(v)&tm) & lk.mask
	for {
		c := lk.codes[h]
		if c < 0 {
			return 0, false
		}
		if lk.keys[h] == v {
			return uint32(c), true
		}
		h = (h + 1) & lk.mask
	}
}

// mix64 is the finalizer of SplitMix64: a cheap, well-distributed integer
// hash.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

package core

import (
	"math/rand"
	"testing"
)

// synthPFOR produces n values where approximately excRate of them fall
// outside the b-bit frame starting at base — the synthetic data of the
// paper's microbenchmarks (Section 3.1: "This data is synthetic, such that
// we could carefully monitor the performance of our algorithms under
// various degrees of skew").
func synthPFOR(rng *rand.Rand, n int, base int64, b uint, excRate float64) []int64 {
	vals := make([]int64, n)
	window := int64(1) << b
	for i := range vals {
		if rng.Float64() < excRate {
			// Outlier: far above the frame, or below the base.
			if rng.Intn(4) == 0 {
				vals[i] = base - 1 - rng.Int63n(1000)
			} else {
				vals[i] = base + window + rng.Int63n(1<<40)
			}
		} else {
			vals[i] = base + rng.Int63n(window-1)
		}
	}
	return vals
}

func checkRoundTrip[T Integer](t *testing.T, blk *Block[T], want []T) {
	t.Helper()
	got := make([]T, len(want))
	Decompress(blk, got)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("round-trip mismatch at %d: got %v want %v (scheme %v b=%d)", i, got[i], want[i], blk.Scheme, blk.B)
		}
	}
}

func TestPFORRoundTripBasic(t *testing.T) {
	src := []int64{3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5, 8, 9, 7, 9, 3, 2}
	// b=3 with base 0: digits >= 8 become exceptions (the paper's Figure 3
	// example: the digits of pi with 3-bit PFOR, min_coded = 0).
	blk := CompressPFOR(src, 0, 3)
	if blk.ExceptionCount() != 4 {
		t.Errorf("pi digits at b=3: got %d exceptions, want 4 (the four values >= 8)", blk.ExceptionCount())
	}
	checkRoundTrip(t, blk, src)
}

func TestPFORRoundTripExceptionRates(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, rate := range []float64{0, 0.01, 0.05, 0.1, 0.3, 0.5, 0.9, 1.0} {
		for _, b := range []uint{1, 2, 3, 5, 8, 13, 24} {
			for _, n := range []int{0, 1, 127, 128, 129, 1000, 4096} {
				src := synthPFOR(rng, n, 100, b, rate)
				blk := CompressPFOR(src, 100, b)
				checkRoundTrip(t, blk, src)
			}
		}
	}
}

func TestPFORVariantsProduceIdenticalBlocks(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	src := synthPFOR(rng, 2000, -50, 6, 0.15)
	dc := CompressPFOR(src, -50, 6)
	pred := CompressPFORPred(src, -50, 6)
	naive := CompressPFORNaive(src, -50, 6)
	for name, other := range map[string]*Block[int64]{"pred": pred, "naive": naive} {
		if len(other.Exc) != len(dc.Exc) {
			t.Fatalf("%s: %d exceptions vs %d", name, len(other.Exc), len(dc.Exc))
		}
		for i := range dc.Codes {
			if other.Codes[i] != dc.Codes[i] {
				t.Fatalf("%s: code word %d differs", name, i)
			}
		}
		for i := range dc.Entries {
			if other.Entries[i] != dc.Entries[i] {
				t.Fatalf("%s: entry %d differs", name, i)
			}
		}
	}
}

func TestPFORBaseNotMinimum(t *testing.T) {
	// Values below the base must round-trip as exceptions — this is what
	// distinguishes PFOR from FOR.
	src := []int32{50, 60, 70, 10, 55, 65, 5, 58}
	blk := CompressPFOR(src, 50, 5)
	if blk.ExceptionCount() < 2 {
		t.Fatalf("want >= 2 exceptions for below-base values, got %d", blk.ExceptionCount())
	}
	checkRoundTrip(t, blk, src)
}

func TestPFORAllExceptions(t *testing.T) {
	src := make([]int64, 500)
	for i := range src {
		src[i] = int64(1_000_000 + i*7919)
	}
	blk := CompressPFOR(src, 0, 1) // everything is an outlier
	if blk.ExceptionCount() != len(src) {
		t.Fatalf("want all %d values as exceptions, got %d", len(src), blk.ExceptionCount())
	}
	checkRoundTrip(t, blk, src)
}

func TestPFORCompulsoryExceptions(t *testing.T) {
	// One natural exception at each end of a group, b=1: the gap limit is
	// 2, so the chain must contain many compulsory links.
	src := make([]int64, GroupSize)
	for i := range src {
		src[i] = int64(i % 2)
	}
	src[0] = 1000
	src[GroupSize-1] = 2000
	blk := CompressPFOR(src, 0, 1)
	if blk.ExceptionCount() < GroupSize/2 {
		t.Fatalf("b=1 with exceptions at both ends needs ~%d compulsory links, got %d", GroupSize/2, blk.ExceptionCount())
	}
	checkRoundTrip(t, blk, src)
}

func TestPFORNoCompulsoryAcrossGroups(t *testing.T) {
	// Exceptions in different groups never need linking: the lists restart
	// at every entry point.
	src := make([]int64, 3*GroupSize)
	src[5] = 1 << 40        // group 0
	src[2*GroupSize+7] = -9 // group 2
	blk := CompressPFOR(src, 0, 1)
	if blk.ExceptionCount() != 2 {
		t.Fatalf("want exactly 2 exceptions (no cross-group compulsories), got %d", blk.ExceptionCount())
	}
	checkRoundTrip(t, blk, src)
}

func TestPFORGapNeverExceedsLimit(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, b := range []uint{1, 2, 3, 4, 7} {
		src := synthPFOR(rng, 4096, 0, b, 0.02)
		blk := CompressPFOR(src, 0, b)
		raw := make([]uint32, blk.N)
		var d Decoder[int64]
		_ = d // decode path validates structure implicitly; here check gaps directly
		rawCodes := unpackAll(blk, raw)
		maxGap := int(min64(maxCode(b)+1, GroupSize))
		for g := 0; g < blk.NumGroups(); g++ {
			es, ee := blk.groupExc(g)
			pos := g*GroupSize + blk.patchStart(g)
			for k := es; k < ee; k++ {
				gap := int(rawCodes[pos]) + 1
				if k+1 < ee && gap > maxGap {
					t.Fatalf("b=%d group %d: link gap %d exceeds 2^b=%d", b, g, gap, maxGap)
				}
				pos += gap
			}
		}
		checkRoundTrip(t, blk, src)
	}
}

func unpackAll[T Integer](blk *Block[T], raw []uint32) []uint32 {
	for g := 0; g < blk.NumGroups(); g++ {
		gStart := g * GroupSize
		gEnd := gStart + GroupSize
		if gEnd > blk.N {
			gEnd = blk.N
		}
		unpackGroup(blk, g, gEnd-gStart, raw[gStart:])
	}
	return raw
}

func TestPFORSignedNarrowTypes(t *testing.T) {
	// Wrapping differences in narrow signed types must stay exact.
	src := []int8{-128, 127, -1, 0, 1, -100, 100}
	blk := CompressPFOR(src, -128, 4)
	checkRoundTrip(t, blk, src)

	src16 := []int16{-32768, 32767, 0, -5, 5}
	blk16 := CompressPFOR(src16, -32768, 8)
	checkRoundTrip(t, blk16, src16)
}

func TestPFORUnsignedFullRange(t *testing.T) {
	src := []uint64{0, ^uint64(0), 1 << 63, 42, 43, 44, 45, 46}
	blk := CompressPFOR(src, 42, 4)
	checkRoundTrip(t, blk, src)
}

func TestPFORWidth32(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	src := make([]uint64, 1000)
	for i := range src {
		src[i] = uint64(rng.Uint32())
	}
	src[17] = 1 << 62 // one outlier
	blk := CompressPFOR(src, 0, 32)
	checkRoundTrip(t, blk, src)
}

func TestPFORRatioReported(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	src := synthPFOR(rng, 100_000, 0, 8, 0.01)
	blk := CompressPFOR(src, 0, 8)
	r := blk.Ratio()
	// 64-bit values in 8-bit codes with ~1% exceptions: ratio should be
	// close to 8 and certainly above 5.
	if r < 5 || r > 8.2 {
		t.Fatalf("ratio %.2f outside plausible [5, 8.2] for 64->8-bit with 1%% exceptions", r)
	}
}

func TestPFORInvalidWidthPanics(t *testing.T) {
	for _, b := range []uint{0, 33} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("width %d: expected panic", b)
				}
			}()
			CompressPFOR([]int64{1}, 0, b)
		}()
	}
	// Width wider than the element type must panic too.
	func() {
		defer func() {
			if recover() == nil {
				t.Error("width 16 on int8: expected panic")
			}
		}()
		CompressPFOR([]int8{1}, 0, 16)
	}()
}

func TestNaiveRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, rate := range []float64{0, 0.2, 0.5, 1.0} {
		src := synthPFOR(rng, 3000, 10, 8, rate)
		blk := CompressNaive(src, 10, 8)
		raw := make([]uint32, len(src))
		dst := make([]T64, len(src))
		blk.Decompress(raw, dst)
		for i := range src {
			if dst[i] != src[i] {
				t.Fatalf("rate %.1f: mismatch at %d", rate, i)
			}
		}
	}
}

type T64 = int64

func TestNaiveEscapeReservesCode(t *testing.T) {
	// With b=3, code 7 is the escape: value base+7 must become an
	// exception even though it fits 3 bits.
	src := []int64{0, 7, 3}
	blk := CompressNaive(src, 0, 3)
	if blk.ExceptionCount() != 1 {
		t.Fatalf("value==MAXCODE must escape: got %d exceptions, want 1", blk.ExceptionCount())
	}
	raw := make([]uint32, 3)
	dst := make([]int64, 3)
	blk.Decompress(raw, dst)
	if dst[1] != 7 {
		t.Fatalf("escaped value decoded to %d", dst[1])
	}
}

func TestNaiveDictRoundTrip(t *testing.T) {
	dict := []int64{100, 200, 300}
	src := []int64{100, 300, 999, 200, 100, -5}
	blk := CompressNaiveDict(src, dict, 2)
	raw := make([]uint32, len(src))
	dst := make([]int64, len(src))
	blk.Decompress(raw, dst)
	for i := range src {
		if dst[i] != src[i] {
			t.Fatalf("mismatch at %d: got %d want %d", i, dst[i], src[i])
		}
	}
	if blk.ExceptionCount() != 2 {
		t.Fatalf("want 2 exceptions, got %d", blk.ExceptionCount())
	}
}

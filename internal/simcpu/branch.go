package simcpu

// Predictor is a table of 2-bit saturating counters indexed by a branch
// identifier — the classic bimodal branch predictor. It is deliberately
// simple: the paper's observation is that the NAIVE kernel's
// exception-test branch approaches a 50% miss rate regardless of predictor
// sophistication, because the outcome sequence is data-dependent and
// effectively random.
type Predictor struct {
	counters []uint8 // 0,1 predict not-taken; 2,3 predict taken
	mask     uint64

	Lookups    uint64
	Mispredict uint64
}

// NewPredictor builds a predictor with the given table size (must be a
// power of two).
func NewPredictor(entries int) *Predictor {
	if entries <= 0 || entries&(entries-1) != 0 {
		panic("simcpu: predictor entries must be a power of two")
	}
	c := make([]uint8, entries)
	for i := range c {
		c[i] = 1 // weakly not-taken
	}
	return &Predictor{counters: c, mask: uint64(entries - 1)}
}

// Branch records one dynamic execution of the branch identified by pc with
// the actual outcome, returning whether the predictor mispredicted.
func (p *Predictor) Branch(pc uint64, taken bool) bool {
	p.Lookups++
	i := (pc * 0x9E3779B97F4A7C15) >> 32 & p.mask
	c := p.counters[i]
	predictedTaken := c >= 2
	if taken && c < 3 {
		p.counters[i] = c + 1
	} else if !taken && c > 0 {
		p.counters[i] = c - 1
	}
	miss := predictedTaken != taken
	if miss {
		p.Mispredict++
	}
	return miss
}

// MissRate returns mispredictions per branch.
func (p *Predictor) MissRate() float64 {
	if p.Lookups == 0 {
		return 0
	}
	return float64(p.Mispredict) / float64(p.Lookups)
}

// Reset clears statistics and counter state.
func (p *Predictor) Reset() {
	for i := range p.counters {
		p.counters[i] = 1
	}
	p.Lookups, p.Mispredict = 0, 0
}

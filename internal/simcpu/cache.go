// Package simcpu simulates the two microarchitectural mechanisms the paper
// measures with hardware event counters: branch prediction (the branch miss
// rate curves of Figure 4) and the cache hierarchy (the L2 miss counts of
// Table 3 and Figure 7).
//
// Pure Go cannot read PMU counters portably, so instrumented replays of the
// exact same kernels drive these models instead; DESIGN.md §3 documents the
// substitution. The models are deliberately simple — a 2-bit saturating
// predictor and set-associative LRU caches — because the paper's claims are
// about the *shape* of the curves (NAIVE's miss-rate peak near 50%
// exceptions, page-wise decompression's extra L2 misses), which any
// reasonable predictor/cache reproduces.
package simcpu

import "fmt"

// Cache is one set-associative, write-allocate, LRU cache level.
type Cache struct {
	name     string
	lineBits uint
	sets     int
	ways     int
	tags     []uint64 // sets*ways, 0 = empty
	age      []uint64 // LRU timestamps
	clock    uint64

	Accesses uint64
	Misses   uint64
}

// NewCache builds a cache of the given total size, line size, and
// associativity. Sizes must be powers of two.
func NewCache(name string, sizeBytes, lineBytes, ways int) *Cache {
	if sizeBytes <= 0 || lineBytes <= 0 || ways <= 0 ||
		sizeBytes%(lineBytes*ways) != 0 {
		panic(fmt.Sprintf("simcpu: bad cache geometry %d/%d/%d", sizeBytes, lineBytes, ways))
	}
	lineBits := uint(0)
	for 1<<lineBits < lineBytes {
		lineBits++
	}
	if 1<<lineBits != lineBytes {
		panic("simcpu: line size must be a power of two")
	}
	sets := sizeBytes / (lineBytes * ways)
	if sets&(sets-1) != 0 {
		panic("simcpu: set count must be a power of two")
	}
	return &Cache{
		name:     name,
		lineBits: lineBits,
		sets:     sets,
		ways:     ways,
		tags:     make([]uint64, sets*ways),
		age:      make([]uint64, sets*ways),
	}
}

// access looks up the line containing addr, filling it on a miss, and
// reports whether it hit.
func (c *Cache) access(addr uint64) bool {
	c.Accesses++
	c.clock++
	line := addr>>c.lineBits + 1 // +1 so tag 0 means "empty"
	set := int(line) & (c.sets - 1)
	base := set * c.ways
	victim := base
	for w := 0; w < c.ways; w++ {
		i := base + w
		if c.tags[i] == line {
			c.age[i] = c.clock
			return true
		}
		if c.age[i] < c.age[victim] {
			victim = i
		}
	}
	c.Misses++
	c.tags[victim] = line
	c.age[victim] = c.clock
	return false
}

// MissRate returns misses/accesses.
func (c *Cache) MissRate() float64 {
	if c.Accesses == 0 {
		return 0
	}
	return float64(c.Misses) / float64(c.Accesses)
}

// Reset clears contents and statistics.
func (c *Cache) Reset() {
	clear(c.tags)
	clear(c.age)
	c.clock, c.Accesses, c.Misses = 0, 0, 0
}

// Hierarchy is an L1+L2 cache pair in front of main memory, with the
// default geometry of the paper's test machines (Pentium4/Opteron class:
// 16KB L1D, 1MB L2, 64-byte lines).
type Hierarchy struct {
	L1, L2 *Cache
	// MemReads counts accesses that missed all the way to DRAM.
	MemReads uint64
}

// NewHierarchy builds the default two-level hierarchy.
func NewHierarchy() *Hierarchy {
	return &Hierarchy{
		L1: NewCache("L1", 16<<10, 64, 8),
		L2: NewCache("L2", 1<<20, 64, 8),
	}
}

// Access touches size bytes starting at addr (read or write — the model is
// write-allocate so both behave alike).
func (h *Hierarchy) Access(addr uint64, size int) {
	lineSize := uint64(1) << h.L1.lineBits
	first := addr &^ (lineSize - 1)
	last := (addr + uint64(size) - 1) &^ (lineSize - 1)
	for a := first; a <= last; a += lineSize {
		if h.L1.access(a) {
			continue
		}
		if h.L2.access(a) {
			continue
		}
		h.MemReads++
	}
}

// Stream touches a contiguous region sequentially, as a tight loop reading
// or writing an array does.
func (h *Hierarchy) Stream(addr uint64, size int) {
	lineSize := 1 << h.L1.lineBits
	for off := 0; off < size; off += lineSize {
		h.Access(addr+uint64(off), 1)
	}
}

// Reset clears both levels and the memory counter.
func (h *Hierarchy) Reset() {
	h.L1.Reset()
	h.L2.Reset()
	h.MemReads = 0
}

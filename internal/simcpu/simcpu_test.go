package simcpu

import (
	"math/rand"
	"testing"

	"repro/internal/core"
)

func TestCacheBasics(t *testing.T) {
	c := NewCache("L1", 1024, 64, 2) // 8 sets x 2 ways
	if hit := c.access(0); hit {
		t.Fatal("cold access must miss")
	}
	if hit := c.access(32); !hit {
		t.Fatal("same line must hit")
	}
	if hit := c.access(0); !hit {
		t.Fatal("repeat must hit")
	}
	if c.Accesses != 3 || c.Misses != 1 {
		t.Fatalf("stats: %d/%d", c.Misses, c.Accesses)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c := NewCache("L1", 1024, 64, 2) // 8 sets, 2 ways; set stride = 512
	// Three lines mapping to the same set: the first must be evicted.
	c.access(0)
	c.access(512)
	c.access(1024)
	if c.access(0) {
		t.Fatal("LRU victim should have been evicted")
	}
	if !c.access(1024) {
		t.Fatal("most recent line should survive")
	}
}

func TestCacheWorkingSetFits(t *testing.T) {
	c := NewCache("L2", 1<<16, 64, 8)
	// Touch a working set half the cache size twice: second pass all hits.
	for pass := 0; pass < 2; pass++ {
		for a := uint64(0); a < 1<<15; a += 64 {
			c.access(a)
		}
	}
	wantMisses := uint64(1 << 15 / 64)
	if c.Misses != wantMisses {
		t.Fatalf("misses %d, want %d (only cold misses)", c.Misses, wantMisses)
	}
}

func TestCacheThrashing(t *testing.T) {
	c := NewCache("L2", 1<<16, 64, 8)
	// Working set 4x cache size, streamed twice: everything misses.
	for pass := 0; pass < 2; pass++ {
		for a := uint64(0); a < 1<<18; a += 64 {
			c.access(a)
		}
	}
	if rate := c.MissRate(); rate < 0.99 {
		t.Fatalf("streaming 4x the cache should always miss, rate %.3f", rate)
	}
}

func TestHierarchyInclusionOfCounts(t *testing.T) {
	h := NewHierarchy()
	h.Stream(0, 1<<20) // 1MB cold stream
	lines := uint64(1 << 20 / 64)
	if h.L1.Accesses != lines {
		t.Fatalf("L1 accesses %d, want %d", h.L1.Accesses, lines)
	}
	if h.L2.Accesses != h.L1.Misses {
		t.Fatal("L2 sees exactly the L1 misses")
	}
	if h.MemReads != h.L2.Misses {
		t.Fatal("memory sees exactly the L2 misses")
	}
}

func TestPredictorLearnsBias(t *testing.T) {
	p := NewPredictor(256)
	for i := 0; i < 1000; i++ {
		p.Branch(1, true)
	}
	if rate := p.MissRate(); rate > 0.01 {
		t.Fatalf("always-taken branch: miss rate %.3f", rate)
	}
	p.Reset()
	// Alternating pattern defeats a bimodal predictor about half the time.
	for i := 0; i < 10000; i++ {
		p.Branch(1, i%2 == 0)
	}
	if rate := p.MissRate(); rate < 0.4 {
		t.Fatalf("alternating branch: miss rate %.3f, want ~0.5", rate)
	}
}

func TestPredictorRandomOutcomesNearHalf(t *testing.T) {
	p := NewPredictor(256)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 100_000; i++ {
		p.Branch(7, rng.Intn(2) == 0)
	}
	if rate := p.MissRate(); rate < 0.4 || rate > 0.6 {
		t.Fatalf("random branch: miss rate %.3f, want ~0.5", rate)
	}
}

// synth produces values with the given exception rate for b=8, base 0.
func synth(rng *rand.Rand, n int, rate float64) []int64 {
	vals := make([]int64, n)
	for i := range vals {
		if rng.Float64() < rate {
			vals[i] = 1 << 30
		} else {
			vals[i] = rng.Int63n(250)
		}
	}
	return vals
}

// TestFigure4Shape verifies the headline claim of Figure 4: the NAIVE
// kernel's branch miss rate peaks near 50% exceptions and collapses at the
// extremes, while the patched kernels stay near zero everywhere.
func TestFigure4Shape(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	const n = 50_000
	missAt := func(rate float64) (naive, patched float64) {
		vals := synth(rng, n, rate)
		nb := core.CompressNaive(vals, 0, 8)
		pb := core.CompressPFOR(vals, 0, 8)
		return ReplayNaiveDecompress(nb).MissRate(), ReplayPatchedDecompress(pb).MissRate()
	}
	n0, p0 := missAt(0)
	n50, p50 := missAt(0.5)
	n100, p100 := missAt(1.0)

	if n50 < 0.15 {
		t.Fatalf("NAIVE at 50%% exceptions: miss rate %.3f, want the Figure-4 peak (>0.15)", n50)
	}
	if n0 > 0.02 || n100 > 0.02 {
		t.Fatalf("NAIVE at extremes should predict well: %.3f / %.3f", n0, n100)
	}
	if p0 > 0.02 || p50 > 0.02 || p100 > 0.02 {
		t.Fatalf("patched kernels must stay branch-free: %.3f %.3f %.3f", p0, p50, p100)
	}
	if n50 < 5*max(p50, 0.001) {
		t.Fatalf("NAIVE peak (%.3f) must dwarf patched (%.3f)", n50, p50)
	}
}

// TestFigure7Shape verifies the I/O-RAM vs RAM-CPU claim: page-wise
// decompression incurs far more memory traffic than vector-wise, because
// the decompressed page makes a round trip through RAM.
func TestFigure7Shape(t *testing.T) {
	const page = 4 << 20 // 4MB decompressed
	const vector = 8 << 10
	pw := ReplayPagewiseDecompress(NewHierarchy(), page, 4.0)
	vw := ReplayVectorwiseDecompress(NewHierarchy(), page, vector, 4.0)
	if pw.MemReads < 2*vw.MemReads {
		t.Fatalf("page-wise memory reads (%d) should be >= 2x vector-wise (%d)", pw.MemReads, vw.MemReads)
	}
	// Vector-wise traffic should approach the compressed size only:
	// page/ratio bytes = page/4 -> page/4/64 lines.
	coldLines := uint64(page / 4 / 64)
	if vw.MemReads > coldLines*3/2 {
		t.Fatalf("vector-wise reads %d, want close to cold compressed lines %d", vw.MemReads, coldLines)
	}
}

func TestReplayCompressLoops(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	flags := make([]bool, 20_000)
	for i := range flags {
		flags[i] = rng.Float64() < 0.5
	}
	naive := ReplayNaiveCompress(flags)
	pred := ReplayPredicatedCompress(len(flags))
	if naive.MissRate() < 0.15 {
		t.Fatalf("branchy compression at 50%%: %.3f, want high", naive.MissRate())
	}
	if pred.MissRate() > 0.01 {
		t.Fatalf("predicated compression should not mispredict: %.3f", pred.MissRate())
	}
}

func TestBadGeometryPanics(t *testing.T) {
	for _, f := range []func(){
		func() { NewCache("x", 1000, 64, 2) }, // not divisible
		func() { NewCache("x", 1024, 48, 2) }, // line not power of two
		func() { NewPredictor(100) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

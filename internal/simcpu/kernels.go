package simcpu

import (
	"repro/internal/bitpack"
	"repro/internal/core"
)

// This file replays the control flow and memory-access streams of the
// (de)compression kernels through the predictor and cache models, yielding
// the counter-based curves of Figures 4 and 7 and Table 3.

// Branch identifiers for the predictor (stand-ins for instruction
// addresses).
const (
	pcNaiveExcTest  = 0x1000 // NAIVE: "if code[i] < MAXCODE"
	pcPatchLoop     = 0x2000 // patched LOOP2: "for cur < n"
	pcValueLoop     = 0x3000 // per-value loop back-edge
	pcCompressBrTst = 0x4000 // NAIVE compression exception branch
)

// BranchStats summarizes a replay.
type BranchStats struct {
	Branches   uint64
	Mispredict uint64
}

// MissRate returns mispredictions per branch.
func (s BranchStats) MissRate() float64 {
	if s.Branches == 0 {
		return 0
	}
	return float64(s.Mispredict) / float64(s.Branches)
}

// ReplayNaiveDecompress replays the NAIVE decompression kernel: one
// loop back-edge per value plus the unpredictable exception-test branch.
func ReplayNaiveDecompress[T core.Integer](blk *core.NaiveBlock[T]) BranchStats {
	p := NewPredictor(4096)
	raw := make([]uint32, blk.N)
	bitpack.Unpack(raw, blk.Codes, blk.B)
	escape := uint32(1)<<blk.B - 1
	for i := 0; i < blk.N; i++ {
		p.Branch(pcNaiveExcTest, raw[i] >= escape)
		p.Branch(pcValueLoop, i+1 < blk.N)
	}
	return BranchStats{p.Lookups, p.Mispredict}
}

// ReplayPatchedDecompress replays the two-loop patched kernel: LOOP1 has
// only its (perfectly predictable) back-edge; LOOP2 iterates once per
// exception with a likewise predictable back-edge. No data-dependent
// branches exist — walking the linked list is a data hazard, not a control
// hazard.
func ReplayPatchedDecompress[T core.Integer](blk *core.Block[T]) BranchStats {
	p := NewPredictor(4096)
	for i := 0; i < blk.N; i++ {
		p.Branch(pcValueLoop, i+1 < blk.N)
	}
	nExc := blk.ExceptionCount()
	for k := 0; k < nExc; k++ {
		p.Branch(pcPatchLoop, k+1 < nExc)
	}
	return BranchStats{p.Lookups, p.Mispredict}
}

// ReplayNaiveCompress replays the branchy compression detection loop
// (Figure 5 "NAIVE"): an if-then-else on every value.
func ReplayNaiveCompress(exceptionFlags []bool) BranchStats {
	p := NewPredictor(4096)
	for i, exc := range exceptionFlags {
		p.Branch(pcCompressBrTst, exc)
		p.Branch(pcValueLoop, i+1 < len(exceptionFlags))
	}
	return BranchStats{p.Lookups, p.Mispredict}
}

// ReplayPredicatedCompress replays the predicated detection loop (Figure 5
// "PRED"/"DC"): the exception test is a data dependency, so only the
// back-edge remains.
func ReplayPredicatedCompress(n int) BranchStats {
	p := NewPredictor(4096)
	for i := 0; i < n; i++ {
		p.Branch(pcValueLoop, i+1 < n)
	}
	return BranchStats{p.Lookups, p.Mispredict}
}

// --- Figure 7 / Table 3: I/O-RAM vs RAM-CPU cache traffic -----------------

// TrafficStats summarizes a cache replay.
type TrafficStats struct {
	L2Accesses uint64
	L2Misses   uint64
	MemReads   uint64
}

// L2MissRate returns L2 misses per L2 access.
func (t TrafficStats) L2MissRate() float64 {
	if t.L2Accesses == 0 {
		return 0
	}
	return float64(t.L2Misses) / float64(t.L2Accesses)
}

// Memory map for the replays (addresses are synthetic; only cache-set
// behaviour matters).
const (
	addrCompressed = 0x1_0000_0000
	addrBuffer     = 0x2_0000_0000
	addrOutput     = 0x3_0000_0000
)

// ReplayPagewiseDecompress models I/O-RAM compression (Figure 1, left):
// the buffer manager decompresses a whole disk page from RAM into a
// decompressed RAM page, and the query then reads that page again. The
// decompressed page exceeds the L2 cache, so the query's reads miss: data
// crosses the RAM-CPU boundary three times.
func ReplayPagewiseDecompress(h *Hierarchy, pageBytes int, ratio float64) TrafficStats {
	compressed := int(float64(pageBytes) / ratio)
	// Decompression: stream-read the compressed page, stream-write the
	// decompressed buffer page.
	h.Stream(addrCompressed, compressed)
	h.Stream(addrBuffer, pageBytes)
	// Query execution: read the decompressed page from the buffer pool.
	h.Stream(addrBuffer, pageBytes)
	return TrafficStats{h.L2.Accesses, h.L2.Misses, h.MemReads}
}

// ReplayVectorwiseDecompress models RAM-CPU cache compression (Figure 1,
// right): each vector is decompressed just-in-time into a CPU-cache
// resident buffer that the query reads immediately — the decompressed data
// never makes a round trip through RAM.
func ReplayVectorwiseDecompress(h *Hierarchy, pageBytes, vectorBytes int, ratio float64) TrafficStats {
	compressed := int(float64(pageBytes) / ratio)
	vectors := (pageBytes + vectorBytes - 1) / vectorBytes
	compPerVec := compressed / vectors
	for v := 0; v < vectors; v++ {
		// Read this vector's slice of the compressed page (cold: one miss
		// per line, the unavoidable traffic).
		h.Stream(addrCompressed+uint64(v*compPerVec), compPerVec)
		// Decompress into the same small vector buffer every time...
		h.Stream(addrOutput, vectorBytes)
		// ...and the query consumes it while it is still cached.
		h.Stream(addrOutput, vectorBytes)
	}
	return TrafficStats{h.L2.Accesses, h.L2.Misses, h.MemReads}
}

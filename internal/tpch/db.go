package tpch

import (
	"time"

	"repro/internal/columnbm"
	"repro/internal/engine"
)

// Store compresses (or stores raw) every relation of ds onto disk in the
// given layout and returns the tables.
func Store(ds *Dataset, disk *columnbm.Disk, layout columnbm.Layout, compress bool, chunkRows int) map[string]*columnbm.Table {
	tables := make(map[string]*columnbm.Table, len(ds.Rels))
	for name, rel := range ds.Rels {
		tables[name] = columnbm.BuildTable(disk, name, layout, rel.Cols, rel.Data, chunkRows, compress)
	}
	return tables
}

// DB is one queryable configuration: a stored dataset plus a buffer
// manager and decompression mode. Create a fresh DB (or at least a fresh
// buffer manager) per measured query run.
type DB struct {
	DS     *Dataset
	Disk   *columnbm.Disk
	BM     *columnbm.BufferManager
	Mode   columnbm.DecompressMode
	Tables map[string]*columnbm.Table

	scanners []*columnbm.Scanner
}

// NewDB assembles a DB over stored tables.
func NewDB(ds *Dataset, disk *columnbm.Disk, tables map[string]*columnbm.Table, bufBytes int64, mode columnbm.DecompressMode) *DB {
	return &DB{
		DS: ds, Disk: disk, Tables: tables,
		BM:   columnbm.NewBufferManager(disk, bufBytes),
		Mode: mode,
	}
}

// Scan opens a vectorized scan of the named columns.
func (db *DB) Scan(rel string, cols ...string) *engine.Scan {
	r := db.DS.Rel(rel)
	idx := make([]int, len(cols))
	for i, c := range cols {
		idx[i] = r.Col(c)
	}
	sc := db.Tables[rel].NewScanner(db.BM, idx, columnbm.DefaultVectorSize, db.Mode)
	db.scanners = append(db.scanners, sc)
	return engine.NewScan(sc)
}

// DecompressTime sums decompression wall time across all scans opened since
// the last ResetStats.
func (db *DB) DecompressTime() time.Duration {
	var total time.Duration
	for _, sc := range db.scanners {
		total += sc.DecompressTime
	}
	return total
}

// ResetStats clears scanner accounting (the disk's I/O counters are reset
// separately via db.Disk.ResetStats).
func (db *DB) ResetStats() { db.scanners = db.scanners[:0] }

// QueryFunc runs one benchmark query and returns its materialized result.
type QueryFunc func(*DB) [][]int64

// QueryOrder lists the Table 2 queries in paper order.
var QueryOrder = []string{"01", "03", "04", "05", "06", "07", "11", "14", "15", "18", "21"}

// Queries maps query number to implementation.
var Queries = map[string]QueryFunc{
	"01": Q1, "03": Q3, "04": Q4, "05": Q5, "06": Q6, "07": Q7,
	"11": Q11, "14": Q14, "15": Q15, "18": Q18, "21": Q21,
}

// ScanColumns lists the columns each query reads, used for Table 2's
// per-query compression-ratio accounting (the paper reports the ratio of
// the data each query touches).
var ScanColumns = map[string]map[string][]string{
	"01": {Lineitem: {"l_returnflag", "l_linestatus", "l_quantity", "l_extendedprice", "l_discount", "l_tax", "l_shipdate"}},
	"03": {Customer: {"c_custkey", "c_mktsegment"}, Orders: {"o_orderkey", "o_custkey", "o_orderdate"}, Lineitem: {"l_orderkey", "l_extendedprice", "l_discount", "l_shipdate"}},
	"04": {Orders: {"o_orderkey", "o_orderdate", "o_orderpriority"}, Lineitem: {"l_orderkey", "l_commitdate", "l_receiptdate"}},
	"05": {Customer: {"c_custkey", "c_nationkey"}, Supplier: {"s_suppkey", "s_nationkey"}, Orders: {"o_orderkey", "o_custkey", "o_orderdate"}, Lineitem: {"l_orderkey", "l_suppkey", "l_extendedprice", "l_discount"}},
	"06": {Lineitem: {"l_shipdate", "l_discount", "l_quantity", "l_extendedprice"}},
	"07": {Customer: {"c_custkey", "c_nationkey"}, Supplier: {"s_suppkey", "s_nationkey"}, Orders: {"o_orderkey", "o_custkey"}, Lineitem: {"l_orderkey", "l_suppkey", "l_extendedprice", "l_discount", "l_shipdate"}},
	"11": {Supplier: {"s_suppkey", "s_nationkey"}, PartSupp: {"ps_partkey", "ps_suppkey", "ps_availqty", "ps_supplycost"}},
	"14": {Part: {"p_partkey", "p_type"}, Lineitem: {"l_partkey", "l_extendedprice", "l_discount", "l_shipdate"}},
	"15": {Lineitem: {"l_suppkey", "l_extendedprice", "l_discount", "l_shipdate"}},
	"18": {Orders: {"o_orderkey", "o_custkey", "o_orderdate"}, Lineitem: {"l_orderkey", "l_quantity"}},
	"21": {Supplier: {"s_suppkey", "s_nationkey"}, Lineitem: {"l_orderkey", "l_suppkey", "l_commitdate", "l_receiptdate"}},
}

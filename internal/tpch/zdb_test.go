package tpch

import (
	"testing"

	"repro/internal/columnbm"
	"repro/zukowski"
)

// TestZQueriesMatchOracle is the compressed-domain cross-check: every
// ZQuery over ZKC2 columns must produce exactly the result of the
// corresponding decode-then-filter engine query over the same dataset.
func TestZQueriesMatchOracle(t *testing.T) {
	ds, db := buildDB(t, columnbm.DSM, false, columnbm.VectorWise)
	zdb, err := BuildZDB(ds)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range ZQueryOrder {
		zq, ok := ZQueries[q]
		if !ok {
			t.Fatalf("ZQueryOrder names %s but ZQueries lacks it", q)
		}
		want := Queries[q](db)
		got := zq(zdb)
		if !ResultsEqual(got, want) {
			t.Errorf("ZQ%s diverges from oracle:\n got %v\nwant %v", q, got, want)
		}
	}
}

// TestZDBScanRoundTrip checks that an unfiltered compressed scan returns
// the generated data verbatim, batch edges included.
func TestZDBScanRoundTrip(t *testing.T) {
	ds := Generate(testSF, 42)
	zdb, err := BuildZDB(ds)
	if err != nil {
		t.Fatal(err)
	}
	rel := ds.Rel(Orders)
	scan := zdb.Scan(Orders, "o_orderkey", "o_orderdate")
	keys, dates := rel.Column("o_orderkey"), rel.Column("o_orderdate")
	row := 0
	for {
		b := scan.Next()
		if b == nil {
			break
		}
		for i := 0; i < b.N; i++ {
			if b.Cols[0][i] != keys[row] || b.Cols[1][i] != dates[row] {
				t.Fatalf("row %d: got (%d,%d), want (%d,%d)",
					row, b.Cols[0][i], b.Cols[1][i], keys[row], dates[row])
			}
			row++
		}
	}
	if row != rel.Rows() {
		t.Fatalf("scanned %d rows, want %d", row, rel.Rows())
	}
}

// TestZDBScanWherePushdown checks predicate pushdown row selection
// against a scalar filter.
func TestZDBScanWherePushdown(t *testing.T) {
	ds := Generate(testSF, 42)
	zdb, err := BuildZDB(ds)
	if err != nil {
		t.Fatal(err)
	}
	rel := ds.Rel(Lineitem)
	lo, hi := Date(1994, 1, 1), Date(1995, 1, 1)-1
	expr := zukowski.Or(
		zukowski.Range[int64](rel.Col("l_shipdate"), lo, hi),
		zukowski.In[int64](rel.Col("l_discount"), 0, 10),
	)
	scan := zdb.ScanWhere(Lineitem, expr, "l_shipdate", "l_discount")
	ship, disc := rel.Column("l_shipdate"), rel.Column("l_discount")
	var want int
	for i := range ship {
		if (ship[i] >= lo && ship[i] <= hi) || disc[i] == 0 || disc[i] == 10 {
			want++
		}
	}
	var got int
	for {
		b := scan.Next()
		if b == nil {
			break
		}
		for i := 0; i < b.N; i++ {
			d, s := b.Cols[1][i], b.Cols[0][i]
			if !((s >= lo && s <= hi) || d == 0 || d == 10) {
				t.Fatalf("row (%d,%d) fails the predicate", s, d)
			}
		}
		got += b.N
	}
	if got != want {
		t.Fatalf("pushdown kept %d rows, scalar filter keeps %d", got, want)
	}
}

// TestResultsEqual pins the nil-versus-empty and shape semantics.
func TestResultsEqual(t *testing.T) {
	if !ResultsEqual([][]int64{nil}, [][]int64{{}}) {
		t.Fatal("nil column should equal empty column")
	}
	if ResultsEqual([][]int64{{1}}, [][]int64{{2}}) {
		t.Fatal("value mismatch not detected")
	}
	if ResultsEqual([][]int64{{1}}, [][]int64{{1}, {1}}) {
		t.Fatal("arity mismatch not detected")
	}
	if ResultsEqual([][]int64{{1}}, [][]int64{{1, 2}}) {
		t.Fatal("length mismatch not detected")
	}
}

// Package tpch provides a deterministic, scaled-down TPC-H data generator
// and the eleven benchmark queries of Table 2 (Q1, 3, 4, 5, 6, 7, 11, 14,
// 15, 18, 21), implemented on the vectorized engine over ColumnBM storage.
//
// The generator reproduces the value distributions that drive compression
// behaviour — sequential keys with gaps, clustered dates, low-cardinality
// enums, decimal prices scaled to integer cents — at laptop scale factors
// (SF 1 = 6M lineitems; the paper ran SF 100). Strings are dictionary
// codes, decimals are scaled integers, dates are day numbers: the
// enumerated-storage convention of MonetDB/X100. Comment columns are
// modeled as incompressible random values, matching the paper's note that
// comment fields "could not be compressed with our algorithms".
package tpch

import (
	"math/rand"
	"time"

	"repro/internal/columnbm"
)

// Relation names.
const (
	Lineitem = "lineitem"
	Orders   = "orders"
	Customer = "customer"
	Supplier = "supplier"
	Nation   = "nation"
	Region   = "region"
	Part     = "part"
	PartSupp = "partsupp"
)

// Rel is one generated relation: named int64 columns.
type Rel struct {
	Name string
	Cols []columnbm.Column
	Data [][]int64
	idx  map[string]int
}

// Col returns the column index for name.
func (r *Rel) Col(name string) int {
	i, ok := r.idx[name]
	if !ok {
		panic("tpch: unknown column " + r.Name + "." + name)
	}
	return i
}

// Column returns the raw data of a named column.
func (r *Rel) Column(name string) []int64 { return r.Data[r.Col(name)] }

// Rows returns the relation cardinality.
func (r *Rel) Rows() int {
	if len(r.Data) == 0 {
		return 0
	}
	return len(r.Data[0])
}

func newRel(name string, cols ...columnbm.Column) *Rel {
	r := &Rel{Name: name, Cols: cols, Data: make([][]int64, len(cols)), idx: map[string]int{}}
	for i, c := range cols {
		r.idx[c.Name] = i
	}
	return r
}

// Dataset is a full generated database.
type Dataset struct {
	SF   float64
	Rels map[string]*Rel
}

// Rel returns a relation by name.
func (ds *Dataset) Rel(name string) *Rel {
	r, ok := ds.Rels[name]
	if !ok {
		panic("tpch: unknown relation " + name)
	}
	return r
}

// Date returns the day number of a calendar date (days since Unix epoch),
// the storage form of all date columns.
func Date(y, m, d int) int64 {
	return time.Date(y, time.Month(m), d, 0, 0, 0, 0, time.UTC).Unix() / 86400
}

// Enum code spaces for string columns.
const (
	NumNations  = 25
	NumRegions  = 5
	NumSegments = 5 // c_mktsegment: AUTOMOBILE..MACHINERY; BUILDING = 1
	NumPrios    = 5 // o_orderpriority: 1-URGENT..5-LOW
	NumModes    = 7 // l_shipmode: REG AIR..TRUCK
	NumTypes    = 150
	// SegmentBuilding is the Q3 market segment code.
	SegmentBuilding = 1
	// RegionAsia is the Q5 region code.
	RegionAsia = 2
	// NationGermany is the Q11 nation code.
	NationGermany = 7
	// NationFrance and NationGermany2 are the Q7 nation pair.
	NationFrance = 6
	// ReturnFlagA/N/R and line status codes.
	FlagA, FlagN, FlagR = 0, 1, 2
	StatusO, StatusF    = 0, 1
)

// Generate builds a deterministic dataset at the given scale factor.
// SF 1 corresponds to 1.5M orders / ~6M lineitems.
func Generate(sf float64, seed int64) *Dataset {
	rng := rand.New(rand.NewSource(seed))
	ds := &Dataset{SF: sf, Rels: map[string]*Rel{}}

	numOrders := int(sf * 1_500_000)
	if numOrders < 100 {
		numOrders = 100
	}
	numCust := max(numOrders/10, 10)
	numSupp := max(int(sf*10_000), 10)
	numPart := max(int(sf*200_000), 50)

	ds.Rels[Region] = genRegion()
	ds.Rels[Nation] = genNation(rng)
	ds.Rels[Supplier] = genSupplier(rng, numSupp)
	ds.Rels[Customer] = genCustomer(rng, numCust)
	ds.Rels[Part] = genPart(rng, numPart)
	ds.Rels[PartSupp] = genPartSupp(rng, numPart)
	orders, lineitem := genOrdersLineitem(rng, numOrders, numCust, numSupp, numPart)
	ds.Rels[Orders] = orders
	ds.Rels[Lineitem] = lineitem
	return ds
}

func genRegion() *Rel {
	r := newRel(Region, columnbm.Column{Name: "r_regionkey"})
	for k := int64(0); k < NumRegions; k++ {
		r.Data[0] = append(r.Data[0], k)
	}
	return r
}

func genNation(rng *rand.Rand) *Rel {
	r := newRel(Nation,
		columnbm.Column{Name: "n_nationkey"},
		columnbm.Column{Name: "n_regionkey"})
	for k := int64(0); k < NumNations; k++ {
		r.Data[0] = append(r.Data[0], k)
		r.Data[1] = append(r.Data[1], k%NumRegions)
	}
	return r
}

func genSupplier(rng *rand.Rand, n int) *Rel {
	r := newRel(Supplier,
		columnbm.Column{Name: "s_suppkey"},
		columnbm.Column{Name: "s_nationkey"})
	for k := 0; k < n; k++ {
		r.Data[0] = append(r.Data[0], int64(k+1))
		r.Data[1] = append(r.Data[1], rng.Int63n(NumNations))
	}
	return r
}

func genCustomer(rng *rand.Rand, n int) *Rel {
	r := newRel(Customer,
		columnbm.Column{Name: "c_custkey"},
		columnbm.Column{Name: "c_nationkey"},
		columnbm.Column{Name: "c_mktsegment"})
	for k := 0; k < n; k++ {
		r.Data[0] = append(r.Data[0], int64(k+1))
		r.Data[1] = append(r.Data[1], rng.Int63n(NumNations))
		r.Data[2] = append(r.Data[2], rng.Int63n(NumSegments))
	}
	return r
}

func genPart(rng *rand.Rand, n int) *Rel {
	r := newRel(Part,
		columnbm.Column{Name: "p_partkey"},
		columnbm.Column{Name: "p_type"},
		columnbm.Column{Name: "p_size"})
	for k := 0; k < n; k++ {
		r.Data[0] = append(r.Data[0], int64(k+1))
		r.Data[1] = append(r.Data[1], rng.Int63n(NumTypes))
		r.Data[2] = append(r.Data[2], 1+rng.Int63n(50))
	}
	return r
}

func genPartSupp(rng *rand.Rand, numPart int) *Rel {
	r := newRel(PartSupp,
		columnbm.Column{Name: "ps_partkey"},
		columnbm.Column{Name: "ps_suppkey"},
		columnbm.Column{Name: "ps_availqty"},
		columnbm.Column{Name: "ps_supplycost"})
	for k := 0; k < numPart; k++ {
		for s := 0; s < 4; s++ {
			r.Data[0] = append(r.Data[0], int64(k+1))
			r.Data[1] = append(r.Data[1], 1+rng.Int63n(1<<20)) // joined via set membership
			r.Data[2] = append(r.Data[2], 1+rng.Int63n(9999))
			r.Data[3] = append(r.Data[3], 100+rng.Int63n(99900)) // cents
		}
	}
	return r
}

// retailPrice mirrors the TPC-H p_retailprice formula (in cents).
func retailPrice(partkey int64) int64 {
	return 90000 + (partkey%2000)*10 + 100*(partkey%1000)/10
}

var (
	startDate = Date(1992, 1, 1)
	endDate   = Date(1998, 8, 2)
)

func genOrdersLineitem(rng *rand.Rand, numOrders, numCust, numSupp, numPart int) (*Rel, *Rel) {
	o := newRel(Orders,
		columnbm.Column{Name: "o_orderkey"},
		columnbm.Column{Name: "o_custkey"},
		columnbm.Column{Name: "o_orderdate"},
		columnbm.Column{Name: "o_orderpriority"},
		columnbm.Column{Name: "o_comment", NoCompress: true})
	l := newRel(Lineitem,
		columnbm.Column{Name: "l_orderkey"},
		columnbm.Column{Name: "l_partkey"},
		columnbm.Column{Name: "l_suppkey"},
		columnbm.Column{Name: "l_linenumber"},
		columnbm.Column{Name: "l_quantity"},
		columnbm.Column{Name: "l_extendedprice"},
		columnbm.Column{Name: "l_discount"},
		columnbm.Column{Name: "l_tax"},
		columnbm.Column{Name: "l_returnflag"},
		columnbm.Column{Name: "l_linestatus"},
		columnbm.Column{Name: "l_shipdate"},
		columnbm.Column{Name: "l_commitdate"},
		columnbm.Column{Name: "l_receiptdate"},
		columnbm.Column{Name: "l_shipmode"},
		columnbm.Column{Name: "l_comment", NoCompress: true})

	dateSpan := endDate - startDate - 151

	for i := 0; i < numOrders; i++ {
		// Order keys are sequential with gaps: 8 keys used per 32-key
		// window, as in dbgen — sparse but strongly clustered, the classic
		// PFOR-DELTA case.
		orderkey := int64(i/8)*32 + int64(i%8) + 1
		custkey := 1 + rng.Int63n(int64(numCust))
		orderdate := startDate + rng.Int63n(dateSpan)
		o.Data[0] = append(o.Data[0], orderkey)
		o.Data[1] = append(o.Data[1], custkey)
		o.Data[2] = append(o.Data[2], orderdate)
		o.Data[3] = append(o.Data[3], rng.Int63n(NumPrios))
		o.Data[4] = append(o.Data[4], rng.Int63())

		lines := 1 + rng.Intn(7)
		for ln := 1; ln <= lines; ln++ {
			partkey := 1 + rng.Int63n(int64(numPart))
			qty := 1 + rng.Int63n(50)
			ship := orderdate + 1 + rng.Int63n(121)
			commit := orderdate + 30 + rng.Int63n(61)
			receipt := ship + 1 + rng.Int63n(30)
			flag := int64(FlagN)
			if receipt <= Date(1995, 6, 17) {
				if rng.Intn(2) == 0 {
					flag = FlagA
				} else {
					flag = FlagR
				}
			}
			status := int64(StatusO)
			if ship <= Date(1995, 6, 17) {
				status = StatusF
			}
			l.Data[0] = append(l.Data[0], orderkey)
			l.Data[1] = append(l.Data[1], partkey)
			l.Data[2] = append(l.Data[2], 1+rng.Int63n(int64(numSupp)))
			l.Data[3] = append(l.Data[3], int64(ln))
			l.Data[4] = append(l.Data[4], qty)
			l.Data[5] = append(l.Data[5], qty*retailPrice(partkey)/100)
			l.Data[6] = append(l.Data[6], rng.Int63n(11)) // 0..10%
			l.Data[7] = append(l.Data[7], rng.Int63n(9))  // 0..8%
			l.Data[8] = append(l.Data[8], flag)
			l.Data[9] = append(l.Data[9], status)
			l.Data[10] = append(l.Data[10], ship)
			l.Data[11] = append(l.Data[11], commit)
			l.Data[12] = append(l.Data[12], receipt)
			l.Data[13] = append(l.Data[13], rng.Int63n(NumModes))
			l.Data[14] = append(l.Data[14], rng.Int63())
		}
	}
	return o, l
}

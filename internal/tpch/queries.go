package tpch

import (
	"sort"
	"time"

	"repro/internal/engine"
)

// The eleven Table-2 queries. They follow the TPC-H access patterns and
// parameter values; the relational logic is simplified where the full
// specification needs features outside this engine's scope (string LIKE,
// correlated EXISTS), but every query touches the same columns, applies
// the same dominant selections, and produces a deterministic result so
// compressed and uncompressed runs can be cross-checked (DESIGN.md §3).

// Q1: pricing summary report. Full lineitem scan, one predicate, group by
// (returnflag, linestatus) with five aggregates.
func Q1(db *DB) [][]int64 {
	scan := db.Scan(Lineitem,
		"l_returnflag", "l_linestatus", "l_quantity", "l_extendedprice",
		"l_discount", "l_tax", "l_shipdate")
	sel := engine.NewSelect(scan, 7, engine.FilterLE(6, Date(1998, 9, 2)))
	proj := engine.NewProject(sel,
		engine.Col(0), engine.Col(1), engine.Col(2), engine.Col(3),
		engine.Revenue(3, 4), // disc_price = price*(100-disc)
		engine.BinOp(3, 4, func(p, d int64) int64 { return p * (100 - d) / 100 }),
	)
	agg := engine.NewHashAgg(proj, []int{0, 1}, []engine.AggSpec{
		{Kind: engine.AggSum, Col: 2}, // sum_qty
		{Kind: engine.AggSum, Col: 3}, // sum_base_price
		{Kind: engine.AggSum, Col: 4}, // sum_disc_price
		{Kind: engine.AggSum, Col: 5}, // sum_charge (tax folded out)
		{Kind: engine.AggCount, Col: 0},
	}, true)
	return engine.Materialize(agg, 7)
}

// Q3: shipping priority. BUILDING customers' unshipped orders, top 10 by
// revenue.
func Q3(db *DB) [][]int64 {
	cutoff := Date(1995, 3, 15)
	custs := engine.SemiJoinSet(engine.NewSelect(
		db.Scan(Customer, "c_custkey", "c_mktsegment"), 2,
		engine.FilterEq(1, SegmentBuilding)), 0)
	orders := engine.NewSelect(
		db.Scan(Orders, "o_orderkey", "o_custkey", "o_orderdate"), 3,
		engine.FilterLT(2, cutoff), engine.FilterIn(1, custs))
	items := engine.NewProject(engine.NewSelect(
		db.Scan(Lineitem, "l_orderkey", "l_extendedprice", "l_discount", "l_shipdate"), 4,
		engine.FilterGT(3, cutoff)),
		engine.Col(0), engine.Revenue(1, 2))
	// probe payload: [orderkey, revenue]; build payload: [orderdate].
	join := engine.NewHashJoin(orders, items, 0, 0, []int{2}, []int{0, 1})
	agg := engine.NewHashAgg(join, []int{0, 2}, []engine.AggSpec{{Kind: engine.AggSum, Col: 1}}, false)
	top := engine.NewTopN(agg, 2, 10, true)
	return engine.Materialize(top, 3)
}

// Q4: order priority checking. Orders of 1993Q3 having at least one
// lineitem received after its commit date, counted by priority.
func Q4(db *DB) [][]int64 {
	late := engine.SemiJoinSet(engine.NewSelect(
		db.Scan(Lineitem, "l_orderkey", "l_commitdate", "l_receiptdate"), 3,
		engine.FilterColLT(1, 2)), 0)
	orders := engine.NewSelect(
		db.Scan(Orders, "o_orderkey", "o_orderdate", "o_orderpriority"), 3,
		engine.FilterGE(1, Date(1993, 7, 1)), engine.FilterLT(1, Date(1993, 10, 1)),
		engine.FilterIn(0, late))
	agg := engine.NewHashAgg(orders, []int{2}, []engine.AggSpec{{Kind: engine.AggCount, Col: 0}}, true)
	return engine.Materialize(agg, 2)
}

// Q5: local supplier volume. Revenue of ASIA-nation lineitems in 1994
// where customer and supplier share the nation, grouped by nation.
func Q5(db *DB) [][]int64 {
	asia := engine.SemiJoinSet(engine.NewSelect(
		db.Scan(Nation, "n_nationkey", "n_regionkey"), 2,
		engine.FilterEq(1, RegionAsia)), 0)
	custNation := lookupMap(db, Customer, "c_custkey", "c_nationkey")
	suppNation := lookupMap(db, Supplier, "s_suppkey", "s_nationkey")

	orders := engine.NewSelect(
		db.Scan(Orders, "o_orderkey", "o_custkey", "o_orderdate"), 3,
		engine.FilterGE(2, Date(1994, 1, 1)), engine.FilterLT(2, Date(1995, 1, 1)))
	items := engine.NewProject(
		db.Scan(Lineitem, "l_orderkey", "l_suppkey", "l_extendedprice", "l_discount"),
		engine.Col(0), engine.Col(1), engine.Revenue(2, 3))
	// probe payload: [suppkey, revenue]; build payload: [custkey].
	join := engine.NewHashJoin(orders, items, 0, 0, []int{1}, []int{1, 2})
	// Keep rows where the supplier's nation is in ASIA and equals the
	// customer's nation, then group revenue by that nation.
	filtered := engine.NewSelect(join, 3, func(b *engine.Batch, cand, out []int32) []int32 {
		j := 0
		for _, i := range cand {
			sn, cok := suppNation[b.Cols[0][i]]
			cn, sok := custNation[b.Cols[2][i]]
			out[j] = i
			if cok && sok && sn == cn && asia[sn] {
				j++
			}
		}
		return out[:j]
	})
	proj := engine.NewProject(filtered,
		func(dst []int64, b *engine.Batch) {
			for i := range dst {
				dst[i] = suppNation[b.Cols[0][i]]
			}
		},
		engine.Col(1))
	agg := engine.NewHashAgg(proj, []int{0}, []engine.AggSpec{{Kind: engine.AggSum, Col: 1}}, true)
	return engine.Materialize(agg, 2)
}

// Q6: forecasting revenue change. The pure-scan query: three predicates,
// one sum.
func Q6(db *DB) [][]int64 {
	sel := engine.NewSelect(
		db.Scan(Lineitem, "l_shipdate", "l_discount", "l_quantity", "l_extendedprice"), 4,
		engine.FilterGE(0, Date(1994, 1, 1)), engine.FilterLT(0, Date(1995, 1, 1)),
		engine.FilterGE(1, 5), engine.FilterLE(1, 7),
		engine.FilterLT(2, 24))
	proj := engine.NewProject(sel, engine.BinOp(3, 1, func(p, d int64) int64 { return p * d }))
	agg := engine.NewHashAgg(proj, nil, []engine.AggSpec{{Kind: engine.AggSum, Col: 0}}, false)
	return engine.Materialize(agg, 1)
}

// Q7: volume shipping between FRANCE and GERMANY, grouped by the nation
// pair and ship year.
func Q7(db *DB) [][]int64 {
	custNation := lookupMap(db, Customer, "c_custkey", "c_nationkey")
	suppNation := lookupMap(db, Supplier, "s_suppkey", "s_nationkey")
	orderCust := engine.NewHashJoin(
		db.Scan(Orders, "o_orderkey", "o_custkey"),
		engine.NewProject(engine.NewSelect(
			db.Scan(Lineitem, "l_orderkey", "l_suppkey", "l_extendedprice", "l_discount", "l_shipdate"), 5,
			engine.FilterGE(4, Date(1995, 1, 1)), engine.FilterLE(4, Date(1996, 12, 31))),
			engine.Col(0), engine.Col(1), engine.Revenue(2, 3), engine.Col(4)),
		0, 0, []int{1}, []int{1, 2, 3})
	// cols: [suppkey, revenue, shipdate, custkey]
	filtered := engine.NewSelect(orderCust, 4, func(b *engine.Batch, cand, out []int32) []int32 {
		j := 0
		for _, i := range cand {
			sn := suppNation[b.Cols[0][i]]
			cn := custNation[b.Cols[3][i]]
			out[j] = i
			if (sn == NationFrance && cn == NationGermany) || (sn == NationGermany && cn == NationFrance) {
				j++
			}
		}
		return out[:j]
	})
	proj := engine.NewProject(filtered,
		func(dst []int64, b *engine.Batch) {
			for i := range dst {
				dst[i] = suppNation[b.Cols[0][i]]
			}
		},
		func(dst []int64, b *engine.Batch) {
			for i := range dst {
				dst[i] = custNation[b.Cols[3][i]]
			}
		},
		func(dst []int64, b *engine.Batch) {
			for i := range dst {
				dst[i] = yearOf(b.Cols[2][i])
			}
		},
		engine.Col(1))
	agg := engine.NewHashAgg(proj, []int{0, 1, 2}, []engine.AggSpec{{Kind: engine.AggSum, Col: 3}}, true)
	return engine.Materialize(agg, 4)
}

// Q11: important stock identification. German suppliers' partsupp value by
// part, keeping parts above a fraction of the total.
func Q11(db *DB) [][]int64 {
	german := engine.SemiJoinSet(engine.NewSelect(
		db.Scan(Supplier, "s_suppkey", "s_nationkey"), 2,
		engine.FilterEq(1, NationGermany)), 0)
	ps := engine.NewProject(engine.NewSelect(
		db.Scan(PartSupp, "ps_partkey", "ps_suppkey", "ps_availqty", "ps_supplycost"), 4,
		engine.FilterIn(1, german)),
		engine.Col(0), engine.BinOp(2, 3, func(q, c int64) int64 { return q * c }))
	agg := engine.Materialize(engine.NewHashAgg(ps, []int{0},
		[]engine.AggSpec{{Kind: engine.AggSum, Col: 1}}, false), 2)

	var total int64
	for _, v := range agg[1] {
		total += v
	}
	threshold := total / 10000 // fraction 0.0001
	var keys, vals []int64
	for i := range agg[0] {
		if agg[1][i] > threshold {
			keys = append(keys, agg[0][i])
			vals = append(vals, agg[1][i])
		}
	}
	// Order by value desc, key asc for determinism.
	idx := make([]int, len(keys))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		if vals[idx[a]] != vals[idx[b]] {
			return vals[idx[a]] > vals[idx[b]]
		}
		return keys[idx[a]] < keys[idx[b]]
	})
	out := [][]int64{make([]int64, len(idx)), make([]int64, len(idx))}
	for i, x := range idx {
		out[0][i] = keys[x]
		out[1][i] = vals[x]
	}
	return out
}

// Q14: promotion effect. Revenue share of promo parts in 1995-09, as a
// ratio scaled by 1e6.
func Q14(db *DB) [][]int64 {
	partType := lookupMap(db, Part, "p_partkey", "p_type")
	items := engine.NewProject(engine.NewSelect(
		db.Scan(Lineitem, "l_partkey", "l_extendedprice", "l_discount", "l_shipdate"), 4,
		engine.FilterGE(3, Date(1995, 9, 1)), engine.FilterLT(3, Date(1995, 10, 1))),
		engine.Col(0), engine.Revenue(1, 2))
	var promo, total int64
	for {
		b := items.Next()
		if b == nil {
			break
		}
		for i := 0; i < b.N; i++ {
			rev := b.Cols[1][i]
			total += rev
			if partType[b.Cols[0][i]] < 50 { // types 0..49 are "PROMO%"
				promo += rev
			}
		}
	}
	if total == 0 {
		return [][]int64{{0}}
	}
	return [][]int64{{promo * 1_000_000 / total}}
}

// Q15: top supplier. Max supplier revenue over 1996Q1.
func Q15(db *DB) [][]int64 {
	items := engine.NewProject(engine.NewSelect(
		db.Scan(Lineitem, "l_suppkey", "l_extendedprice", "l_discount", "l_shipdate"), 4,
		engine.FilterGE(3, Date(1996, 1, 1)), engine.FilterLT(3, Date(1996, 4, 1))),
		engine.Col(0), engine.Revenue(1, 2))
	agg := engine.Materialize(engine.NewHashAgg(items, []int{0},
		[]engine.AggSpec{{Kind: engine.AggSum, Col: 1}}, false), 2)
	var bestKey, bestVal int64 = -1, -1
	for i := range agg[0] {
		if agg[1][i] > bestVal || (agg[1][i] == bestVal && agg[0][i] < bestKey) {
			bestKey, bestVal = agg[0][i], agg[1][i]
		}
	}
	if bestKey < 0 {
		return [][]int64{{}, {}}
	}
	return [][]int64{{bestKey}, {bestVal}}
}

// Q18: large volume customers. Orders whose lineitems sum to > 300 units,
// top 100 by total quantity.
func Q18(db *DB) [][]int64 {
	qty := engine.NewHashAgg(
		db.Scan(Lineitem, "l_orderkey", "l_quantity"),
		[]int{0}, []engine.AggSpec{{Kind: engine.AggSum, Col: 1}}, false)
	big := engine.NewSelect(qty, 2, engine.FilterGT(1, 300))
	// join with orders for custkey and orderdate.
	join := engine.NewHashJoin(
		db.Scan(Orders, "o_orderkey", "o_custkey", "o_orderdate"),
		big, 0, 0, []int{1, 2}, []int{0, 1})
	// cols: [orderkey, sumqty, custkey, orderdate]
	top := engine.NewTopN(join, 1, 100, true)
	return engine.Materialize(top, 4)
}

// Q21: suppliers who kept orders waiting: late lineitems of SAUDI-ARABIA
// suppliers (nation 20), counted per supplier, top 100.
func Q21(db *DB) [][]int64 {
	const nationSaudi = 20
	saudi := engine.SemiJoinSet(engine.NewSelect(
		db.Scan(Supplier, "s_suppkey", "s_nationkey"), 2,
		engine.FilterEq(1, nationSaudi)), 0)
	late := engine.NewSelect(
		db.Scan(Lineitem, "l_orderkey", "l_suppkey", "l_commitdate", "l_receiptdate"), 4,
		engine.FilterColLT(2, 3), engine.FilterIn(1, saudi))
	agg := engine.NewHashAgg(late, []int{1},
		[]engine.AggSpec{{Kind: engine.AggCount, Col: 0}}, false)
	top := engine.NewTopN(agg, 1, 100, true)
	return engine.Materialize(top, 2)
}

// lookupMap scans a two-column dimension relation into a key->value map.
func lookupMap(db *DB, rel, keyCol, valCol string) map[int64]int64 {
	out := make(map[int64]int64)
	scan := db.Scan(rel, keyCol, valCol)
	for {
		b := scan.Next()
		if b == nil {
			return out
		}
		for i := 0; i < b.N; i++ {
			out[b.Cols[0][i]] = b.Cols[1][i]
		}
	}
}

// yearOf converts a day number to its calendar year.
func yearOf(day int64) int64 {
	return int64(time.Unix(day*86400, 0).UTC().Year())
}

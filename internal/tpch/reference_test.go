package tpch

import (
	"testing"

	"repro/internal/columnbm"
)

// Scalar reference implementations: the vectorized pipeline must agree
// with a plain row-at-a-time computation over the generated data.

func TestQ6MatchesScalarReference(t *testing.T) {
	ds, db := buildDB(t, columnbm.DSM, true, columnbm.VectorWise)
	li := ds.Rel(Lineitem)
	ship := li.Column("l_shipdate")
	disc := li.Column("l_discount")
	qty := li.Column("l_quantity")
	price := li.Column("l_extendedprice")

	var want int64
	lo, hi := Date(1994, 1, 1), Date(1995, 1, 1)
	for i := 0; i < li.Rows(); i++ {
		if ship[i] >= lo && ship[i] < hi && disc[i] >= 5 && disc[i] <= 7 && qty[i] < 24 {
			want += price[i] * disc[i]
		}
	}
	got := Q6(db)
	if got[0][0] != want {
		t.Fatalf("Q6 = %d, scalar reference = %d", got[0][0], want)
	}
}

func TestQ1MatchesScalarReference(t *testing.T) {
	ds, db := buildDB(t, columnbm.PAX, true, columnbm.VectorWise)
	li := ds.Rel(Lineitem)
	flag := li.Column("l_returnflag")
	status := li.Column("l_linestatus")
	qty := li.Column("l_quantity")
	price := li.Column("l_extendedprice")
	disc := li.Column("l_discount")
	ship := li.Column("l_shipdate")

	type key struct{ f, s int64 }
	sumQty := map[key]int64{}
	sumRev := map[key]int64{}
	count := map[key]int64{}
	cutoff := Date(1998, 9, 2)
	for i := 0; i < li.Rows(); i++ {
		if ship[i] > cutoff {
			continue
		}
		k := key{flag[i], status[i]}
		sumQty[k] += qty[i]
		sumRev[k] += price[i] * (100 - disc[i])
		count[k]++
	}

	got := Q1(db)
	if len(got[0]) != len(count) {
		t.Fatalf("Q1 groups %d, reference %d", len(got[0]), len(count))
	}
	for i := range got[0] {
		k := key{got[0][i], got[1][i]}
		if got[2][i] != sumQty[k] {
			t.Fatalf("group %v: sum_qty %d, want %d", k, got[2][i], sumQty[k])
		}
		if got[4][i] != sumRev[k] {
			t.Fatalf("group %v: sum_disc_price %d, want %d", k, got[4][i], sumRev[k])
		}
		if got[6][i] != count[k] {
			t.Fatalf("group %v: count %d, want %d", k, got[6][i], count[k])
		}
	}
}

func TestQ15MatchesScalarReference(t *testing.T) {
	ds, db := buildDB(t, columnbm.DSM, true, columnbm.PageWise)
	li := ds.Rel(Lineitem)
	supp := li.Column("l_suppkey")
	price := li.Column("l_extendedprice")
	disc := li.Column("l_discount")
	ship := li.Column("l_shipdate")

	rev := map[int64]int64{}
	lo, hi := Date(1996, 1, 1), Date(1996, 4, 1)
	for i := 0; i < li.Rows(); i++ {
		if ship[i] >= lo && ship[i] < hi {
			rev[supp[i]] += price[i] * (100 - disc[i])
		}
	}
	var bestKey, bestVal int64 = -1, -1
	for k, v := range rev {
		if v > bestVal || (v == bestVal && k < bestKey) {
			bestKey, bestVal = k, v
		}
	}
	got := Q15(db)
	if got[0][0] != bestKey || got[1][0] != bestVal {
		t.Fatalf("Q15 = (%d,%d), reference (%d,%d)", got[0][0], got[1][0], bestKey, bestVal)
	}
}

func TestQ4MatchesScalarReference(t *testing.T) {
	ds, db := buildDB(t, columnbm.DSM, false, columnbm.VectorWise)
	li := ds.Rel(Lineitem)
	orders := ds.Rel(Orders)

	late := map[int64]bool{}
	lok := li.Column("l_orderkey")
	commit := li.Column("l_commitdate")
	receipt := li.Column("l_receiptdate")
	for i := 0; i < li.Rows(); i++ {
		if commit[i] < receipt[i] {
			late[lok[i]] = true
		}
	}
	counts := map[int64]int64{}
	ook := orders.Column("o_orderkey")
	odate := orders.Column("o_orderdate")
	oprio := orders.Column("o_orderpriority")
	lo, hi := Date(1993, 7, 1), Date(1993, 10, 1)
	for i := 0; i < orders.Rows(); i++ {
		if odate[i] >= lo && odate[i] < hi && late[ook[i]] {
			counts[oprio[i]]++
		}
	}
	got := Q4(db)
	if len(got[0]) != len(counts) {
		t.Fatalf("Q4 groups %d, reference %d", len(got[0]), len(counts))
	}
	for i := range got[0] {
		if got[1][i] != counts[got[0][i]] {
			t.Fatalf("priority %d: count %d, want %d", got[0][i], got[1][i], counts[got[0][i]])
		}
	}
}

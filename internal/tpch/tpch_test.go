package tpch

import (
	"slices"
	"testing"

	"repro/internal/columnbm"
	"repro/internal/core"
)

const testSF = 0.002 // ~3000 orders, ~12k lineitems: fast but multi-chunk
const testChunkRows = 4096

func buildDB(t *testing.T, layout columnbm.Layout, compress bool, mode columnbm.DecompressMode) (*Dataset, *DB) {
	t.Helper()
	ds := Generate(testSF, 42)
	disk := columnbm.NewDisk(80)
	tables := Store(ds, disk, layout, compress, testChunkRows)
	db := NewDB(ds, disk, tables, 1<<30, mode)
	return ds, db
}

func TestGeneratorDeterministic(t *testing.T) {
	a := Generate(testSF, 42)
	b := Generate(testSF, 42)
	for name := range a.Rels {
		ra, rb := a.Rel(name), b.Rel(name)
		if ra.Rows() != rb.Rows() {
			t.Fatalf("%s: %d vs %d rows", name, ra.Rows(), rb.Rows())
		}
		for c := range ra.Data {
			if !slices.Equal(ra.Data[c], rb.Data[c]) {
				t.Fatalf("%s col %d differs between runs", name, c)
			}
		}
	}
}

func TestGeneratorShapes(t *testing.T) {
	ds := Generate(testSF, 1)
	li := ds.Rel(Lineitem)
	orders := ds.Rel(Orders)
	// 1..7 lineitems per order, average 4.
	ratio := float64(li.Rows()) / float64(orders.Rows())
	if ratio < 3 || ratio > 5 {
		t.Fatalf("lineitems per order %.2f, want ~4", ratio)
	}
	// Orderkeys ascending with gaps.
	ok := orders.Column("o_orderkey")
	for i := 1; i < len(ok); i++ {
		if ok[i] <= ok[i-1] {
			t.Fatal("orderkeys must ascend")
		}
	}
	// Dates within the TPC-H range.
	for _, d := range li.Column("l_shipdate") {
		if d < Date(1992, 1, 1) || d > Date(1998, 12, 31) {
			t.Fatalf("shipdate %d out of range", d)
		}
	}
	// Discounts 0..10.
	for _, d := range li.Column("l_discount") {
		if d < 0 || d > 10 {
			t.Fatalf("discount %d", d)
		}
	}
}

func TestCompressionChoicesMatchPaperIntuition(t *testing.T) {
	ds := Generate(testSF, 7)
	disk := columnbm.NewDisk(80)
	tables := Store(ds, disk, columnbm.DSM, true, testChunkRows)

	li := tables[Lineitem]
	rel := ds.Rel(Lineitem)
	choice := func(col string) core.Choice[int64] { return li.Choices[rel.Col(col)] }

	// l_orderkey is sorted and dense: PFOR-DELTA.
	if c := choice("l_orderkey"); c.Scheme != core.SchemePFORDelta {
		t.Errorf("l_orderkey chose %v, want PFOR-DELTA", c.Scheme)
	}
	// l_linenumber has 7 values: tiny codes, any non-NONE scheme.
	if c := choice("l_linenumber"); c.Scheme == core.SchemeNone || c.B > 4 {
		t.Errorf("l_linenumber chose %v b=%d", c.Scheme, c.B)
	}
	// l_comment is random: NONE.
	if c := choice("l_comment"); c.Scheme != core.SchemeNone {
		t.Errorf("l_comment chose %v, want NONE", c.Scheme)
	}
	// Table-wide ratio in the paper's 2-4.5 band for lineitem (comments
	// drag it down, keys and enums pull it up).
	if r := li.Ratio(); r < 2 || r > 6 {
		t.Errorf("lineitem ratio %.2f outside [2,6]", r)
	}
}

func TestAllQueriesRunAndMatchAcrossConfigs(t *testing.T) {
	// The central correctness claim: every query must produce the exact
	// same result on every (layout, compression, decompression-mode)
	// configuration.
	_, ref := buildDB(t, columnbm.DSM, false, columnbm.VectorWise)
	want := map[string][][]int64{}
	for _, q := range QueryOrder {
		want[q] = Queries[q](ref)
		if len(want[q]) == 0 {
			t.Fatalf("Q%s returned no columns", q)
		}
	}

	for _, layout := range []columnbm.Layout{columnbm.DSM, columnbm.PAX} {
		for _, compress := range []bool{true, false} {
			for _, mode := range []columnbm.DecompressMode{columnbm.VectorWise, columnbm.PageWise} {
				_, db := buildDB(t, layout, compress, mode)
				for _, q := range QueryOrder {
					got := Queries[q](db)
					if len(got) != len(want[q]) {
						t.Fatalf("Q%s %v/%v/compress=%v: arity %d vs %d",
							q, layout, mode, compress, len(got), len(want[q]))
					}
					for c := range got {
						if !slices.Equal(got[c], want[q][c]) {
							t.Fatalf("Q%s %v/%v/compress=%v: column %d differs\n got=%v\nwant=%v",
								q, layout, mode, compress, c, clip(got[c]), clip(want[q][c]))
						}
					}
				}
			}
		}
	}
}

func clip(v []int64) []int64 {
	if len(v) > 12 {
		return v[:12]
	}
	return v
}

func TestQ1Sanity(t *testing.T) {
	_, db := buildDB(t, columnbm.DSM, true, columnbm.VectorWise)
	out := Q1(db)
	// Groups: (A,F), (N,F), (N,O), (R,F) — the classic Q1 result shape.
	if len(out[0]) != 4 {
		t.Fatalf("Q1 groups = %d, want 4 (got flags %v status %v)", len(out[0]), out[0], out[1])
	}
	// Counts must sum to the rows passing the date filter (nearly all).
	var n int64
	for _, c := range out[6] {
		n += c
	}
	li := db.DS.Rel(Lineitem)
	if n < int64(li.Rows())*9/10 || n > int64(li.Rows()) {
		t.Fatalf("Q1 total count %d of %d rows", n, li.Rows())
	}
}

func TestQ6Sanity(t *testing.T) {
	_, db := buildDB(t, columnbm.DSM, true, columnbm.VectorWise)
	out := Q6(db)
	if len(out[0]) != 1 || out[0][0] <= 0 {
		t.Fatalf("Q6 revenue = %v", out)
	}
}

func TestQ18ThresholdRespected(t *testing.T) {
	_, db := buildDB(t, columnbm.DSM, true, columnbm.VectorWise)
	out := Q18(db)
	for _, q := range out[1] {
		if q <= 300 {
			t.Fatalf("Q18 emitted group with qty %d <= 300", q)
		}
	}
	// Descending by quantity.
	for i := 1; i < len(out[1]); i++ {
		if out[1][i] > out[1][i-1] {
			t.Fatal("Q18 not sorted desc")
		}
	}
}

func TestScanColumnsCoverage(t *testing.T) {
	// Every query has a scan-column entry and every listed column exists.
	ds := Generate(0.001, 1)
	for _, q := range QueryOrder {
		m, ok := ScanColumns[q]
		if !ok {
			t.Fatalf("no ScanColumns for Q%s", q)
		}
		for rel, cols := range m {
			r := ds.Rel(rel)
			for _, c := range cols {
				r.Col(c) // panics if missing
			}
		}
	}
}

func TestDecompressTimeAccounting(t *testing.T) {
	_, db := buildDB(t, columnbm.DSM, true, columnbm.VectorWise)
	db.ResetStats()
	Q1(db)
	if db.DecompressTime() <= 0 {
		t.Fatal("compressed scan must account decompression time")
	}
}

func TestDateHelper(t *testing.T) {
	if Date(1970, 1, 1) != 0 {
		t.Fatal("epoch")
	}
	if Date(1992, 1, 1)-Date(1991, 12, 31) != 1 {
		t.Fatal("consecutive days")
	}
	if yearOf(Date(1995, 6, 17)) != 1995 || yearOf(Date(1996, 1, 1)) != 1996 {
		t.Fatal("yearOf")
	}
}

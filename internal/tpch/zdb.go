package tpch

import (
	"bytes"
	"fmt"

	"repro/internal/engine"
	"repro/zukowski"
)

// ZDB is the compressed-domain database: every relation encoded as one
// zukowski.ColumnSet of ZKC2 columns (Auto codec per block), queried
// through the expression tree API — Expr filtering below decompression,
// GroupAggregate folding in dictionary-code space — instead of the
// decode-then-filter engine pipeline DB drives. The ZQueries family
// produces results byte-identical to the corresponding tpch.Queries, so
// the two paths cross-check each other end to end.
type ZDB struct {
	DS   *Dataset
	sets map[string]*zukowski.ColumnSet[int64]
}

// BuildZDB encodes every column of every relation in ds into in-memory
// ZKC2 and assembles one ColumnSet per relation, with set column indexes
// matching Rel.Col.
func BuildZDB(ds *Dataset) (*ZDB, error) {
	z := &ZDB{DS: ds, sets: make(map[string]*zukowski.ColumnSet[int64], len(ds.Rels))}
	for name, rel := range ds.Rels {
		crs := make([]*zukowski.ColumnReader[int64], len(rel.Data))
		for i, vals := range rel.Data {
			var buf bytes.Buffer
			cw, err := zukowski.NewColumnWriter[int64](&buf, nil, 0)
			if err != nil {
				return nil, fmt.Errorf("tpch: %s.%s: %w", name, rel.Cols[i].Name, err)
			}
			if err := cw.Write(vals); err != nil {
				return nil, fmt.Errorf("tpch: %s.%s: %w", name, rel.Cols[i].Name, err)
			}
			if err := cw.Close(); err != nil {
				return nil, fmt.Errorf("tpch: %s.%s: %w", name, rel.Cols[i].Name, err)
			}
			if crs[i], err = zukowski.OpenColumn[int64](buf.Bytes()); err != nil {
				return nil, fmt.Errorf("tpch: %s.%s: %w", name, rel.Cols[i].Name, err)
			}
		}
		set, err := zukowski.NewColumnSet(crs...)
		if err != nil {
			return nil, fmt.Errorf("tpch: %s: %w", name, err)
		}
		z.sets[name] = set
	}
	return z, nil
}

// Set returns the relation's ColumnSet.
func (z *ZDB) Set(rel string) *zukowski.ColumnSet[int64] {
	s, ok := z.sets[rel]
	if !ok {
		panic("tpch: unknown relation " + rel)
	}
	return s
}

// Col returns the set column index of rel's named column.
func (z *ZDB) Col(rel, col string) int { return z.DS.Rel(rel).Col(col) }

// Scan returns an operator over the named columns of rel, in row order.
func (z *ZDB) Scan(rel string, cols ...string) *engine.SetScan {
	return z.ScanWhere(rel, zukowski.Expr[int64]{}, cols...)
}

// ScanWhere returns an operator over the named columns of rel at the
// rows expr selects, in row order. The expression is pushed below
// decompression: zone maps prune blocks, masks evaluate on compressed
// words, and only surviving rows materialize.
func (z *ZDB) ScanWhere(rel string, expr zukowski.Expr[int64], cols ...string) *engine.SetScan {
	r := z.DS.Rel(rel)
	idx := make([]int, len(cols))
	for i, c := range cols {
		idx[i] = r.Col(c)
	}
	return engine.NewSetScan(z.Set(rel), expr, idx...)
}

// maxDate is the open upper bound for "later than" date pushdowns; no
// generated date reaches it, and it keeps range arithmetic far from the
// int64 edges the codecs reject.
var maxDate = Date(2199, 12, 31)

// ZQueryOrder lists the compressed-domain queries in presentation order.
var ZQueryOrder = []string{"01", "03", "06", "14", "15", "18"}

// ZQueries maps query names to their compressed-domain implementations.
// Each produces exactly the same result slices as Queries[name] over the
// same Dataset.
var ZQueries = map[string]func(*ZDB) [][]int64{
	"01": ZQ1,
	"03": ZQ3,
	"06": ZQ6,
	"14": ZQ14,
	"15": ZQ15,
	"18": ZQ18,
}

// ZQ1: pricing summary report as a single compressed-domain
// GroupAggregate — the date predicate filters below decompression, and
// the (returnflag, linestatus) grouping folds in dictionary-code space.
// GroupAggregate's key-sorted output matches HashAgg's sorted order.
func ZQ1(z *ZDB) [][]int64 {
	set := z.Set(Lineitem)
	qty := z.Col(Lineitem, "l_quantity")
	price := z.Col(Lineitem, "l_extendedprice")
	disc := z.Col(Lineitem, "l_discount")
	rf := z.Col(Lineitem, "l_returnflag")
	ls := z.Col(Lineitem, "l_linestatus")
	ship := z.Col(Lineitem, "l_shipdate")
	g, err := set.GroupAggregate(
		zukowski.Range[int64](ship, 0, Date(1998, 9, 2)),
		[]int{rf, ls},
		[]zukowski.AggSpec[int64]{
			{Kind: zukowski.AggSum, Col: qty},
			{Kind: zukowski.AggSum, Col: price},
			{Kind: zukowski.AggSum, Cols: []int{price, disc}, Map: func(c [][]int64, i int) int64 {
				return c[price][i] * (100 - c[disc][i])
			}},
			{Kind: zukowski.AggSum, Cols: []int{price, disc}, Map: func(c [][]int64, i int) int64 {
				return c[price][i] * (100 - c[disc][i]) / 100
			}},
			{Kind: zukowski.AggCount},
		})
	if err != nil {
		panic(err)
	}
	out := make([][]int64, 7)
	for gi := range g.Keys {
		out[0] = append(out[0], g.Keys[gi][0])
		out[1] = append(out[1], g.Keys[gi][1])
		for s := 0; s < 5; s++ {
			out[2+s] = append(out[2+s], g.Aggs[gi][s])
		}
	}
	return out
}

// ZQ3: shipping priority. The engine pipeline of Q3 with every scan
// predicate pushed into the compressed domain: segment membership via
// In, the date cutoffs via Range. Row-order delivery keeps the hash
// join's build order, the aggregate's group order and TopN's tie
// handling identical to the oracle.
func ZQ3(z *ZDB) [][]int64 {
	cutoff := Date(1995, 3, 15)
	custs := engine.SemiJoinSet(z.ScanWhere(Customer,
		zukowski.In[int64](z.Col(Customer, "c_mktsegment"), SegmentBuilding),
		"c_custkey"), 0)
	orders := engine.NewSelect(z.ScanWhere(Orders,
		zukowski.Range[int64](z.Col(Orders, "o_orderdate"), 0, cutoff-1),
		"o_orderkey", "o_custkey", "o_orderdate"), 3,
		engine.FilterIn(1, custs))
	items := engine.NewProject(z.ScanWhere(Lineitem,
		zukowski.Range[int64](z.Col(Lineitem, "l_shipdate"), cutoff+1, maxDate),
		"l_orderkey", "l_extendedprice", "l_discount"),
		engine.Col(0), engine.Revenue(1, 2))
	join := engine.NewHashJoin(orders, items, 0, 0, []int{2}, []int{0, 1})
	agg := engine.NewHashAgg(join, []int{0, 2}, []engine.AggSpec{{Kind: engine.AggSum, Col: 1}}, false)
	top := engine.NewTopN(agg, 2, 10, true)
	return engine.Materialize(top, 3)
}

// ZQ6: forecasting revenue change — the paper's scan query as one
// conjunctive expression over three columns, folded by a group-less
// GroupAggregate. Nothing but the two aggregate inputs ever decompresses.
func ZQ6(z *ZDB) [][]int64 {
	set := z.Set(Lineitem)
	ship := z.Col(Lineitem, "l_shipdate")
	discCol := z.Col(Lineitem, "l_discount")
	qty := z.Col(Lineitem, "l_quantity")
	price := z.Col(Lineitem, "l_extendedprice")
	g, err := set.GroupAggregate(
		zukowski.And(
			zukowski.Range[int64](ship, Date(1994, 1, 1), Date(1995, 1, 1)-1),
			zukowski.Range[int64](discCol, 5, 7),
			zukowski.Range[int64](qty, 0, 23),
		),
		nil,
		[]zukowski.AggSpec[int64]{
			{Kind: zukowski.AggSum, Cols: []int{price, discCol}, Map: func(c [][]int64, i int) int64 {
				return c[price][i] * c[discCol][i]
			}},
		})
	if err != nil {
		panic(err)
	}
	if len(g.Keys) == 0 {
		// Match the engine path: an empty input still yields one
		// materialized (empty) column.
		return [][]int64{nil}
	}
	return [][]int64{{g.Aggs[0][0]}}
}

// ZQ14: promotion effect. The part-type lookup projects straight out of
// the compressed part relation; the lineitem month filters below
// decompression. The ratio is order-independent.
func ZQ14(z *ZDB) [][]int64 {
	_, pv, err := z.Set(Part).Project(zukowski.Expr[int64]{},
		z.Col(Part, "p_partkey"), z.Col(Part, "p_type"))
	if err != nil {
		panic(err)
	}
	partType := make(map[int64]int64, len(pv[0]))
	for i := range pv[0] {
		partType[pv[0][i]] = pv[1][i]
	}
	items := engine.NewProject(z.ScanWhere(Lineitem,
		zukowski.Range[int64](z.Col(Lineitem, "l_shipdate"), Date(1995, 9, 1), Date(1995, 10, 1)-1),
		"l_partkey", "l_extendedprice", "l_discount"),
		engine.Col(0), engine.Revenue(1, 2))
	var promo, total int64
	for {
		b := items.Next()
		if b == nil {
			break
		}
		for i := 0; i < b.N; i++ {
			rev := b.Cols[1][i]
			total += rev
			if partType[b.Cols[0][i]] < 50 {
				promo += rev
			}
		}
	}
	if total == 0 {
		return [][]int64{{0}}
	}
	return [][]int64{{promo * 1_000_000 / total}}
}

// ZQ15: top supplier. A filtered GroupAggregate by suppkey; the maximum
// is order-independent under Q15's (value desc, key asc) tie-break.
func ZQ15(z *ZDB) [][]int64 {
	set := z.Set(Lineitem)
	supp := z.Col(Lineitem, "l_suppkey")
	price := z.Col(Lineitem, "l_extendedprice")
	disc := z.Col(Lineitem, "l_discount")
	ship := z.Col(Lineitem, "l_shipdate")
	g, err := set.GroupAggregate(
		zukowski.Range[int64](ship, Date(1996, 1, 1), Date(1996, 4, 1)-1),
		[]int{supp},
		[]zukowski.AggSpec[int64]{
			{Kind: zukowski.AggSum, Cols: []int{price, disc}, Map: func(c [][]int64, i int) int64 {
				return c[price][i] * (100 - c[disc][i])
			}},
		})
	if err != nil {
		panic(err)
	}
	var bestKey, bestVal int64 = -1, -1
	for gi := range g.Keys {
		k, v := g.Keys[gi][0], g.Aggs[gi][0]
		if v > bestVal || (v == bestVal && k < bestKey) {
			bestKey, bestVal = k, v
		}
	}
	if bestKey < 0 {
		return [][]int64{{}, {}}
	}
	return [][]int64{{bestKey}, {bestVal}}
}

// ZQ18: large volume customers. Q18's pipeline fed from compressed scans;
// the full-relation scans decompress through the mask path with zone
// pruning disabled by the empty expression, and row order preserves the
// oracle's group and tie behaviour.
func ZQ18(z *ZDB) [][]int64 {
	qty := engine.NewHashAgg(
		z.Scan(Lineitem, "l_orderkey", "l_quantity"),
		[]int{0}, []engine.AggSpec{{Kind: engine.AggSum, Col: 1}}, false)
	big := engine.NewSelect(qty, 2, engine.FilterGT(1, 300))
	join := engine.NewHashJoin(
		z.Scan(Orders, "o_orderkey", "o_custkey", "o_orderdate"),
		big, 0, 0, []int{1, 2}, []int{0, 1})
	top := engine.NewTopN(join, 1, 100, true)
	return engine.Materialize(top, 4)
}

// ResultsEqual reports whether two materialized results hold the same
// values, treating a nil column and an empty column as equal.
func ResultsEqual(a, b [][]int64) bool {
	if len(a) != len(b) {
		return false
	}
	for c := range a {
		if len(a[c]) != len(b[c]) {
			return false
		}
		for i := range a[c] {
			if a[c][i] != b[c][i] {
				return false
			}
		}
	}
	return true
}

package columnbm

import "fmt"

// DeltaStore implements the differential-file update mechanism sketched in
// Section 2.3 (after Severance & Lohman): tables on disk are immutable,
// compressed objects; modifications accumulate in in-memory delta
// structures and are merged into the scan stream, so the execution layer
// always sees a consistent state. Merging happens *after* decompression,
// which is why the RAM-CPU cache architecture "nicely fits the delta-based
// update mechanism" — chunks need to be re-compressed only when the deltas
// are periodically checkpointed (Merge).
type DeltaStore struct {
	table *Table

	inserts [][]int64    // one slice per column: appended rows
	deleted map[int]bool // row IDs of the base table marked deleted
	updates map[int][]int64
}

// NewDeltaStore wraps an immutable table with delta structures.
func NewDeltaStore(t *Table) *DeltaStore {
	return &DeltaStore{
		table:   t,
		inserts: make([][]int64, len(t.Columns)),
		deleted: make(map[int]bool),
		updates: make(map[int][]int64),
	}
}

// Insert appends one row (one value per column).
func (d *DeltaStore) Insert(row []int64) {
	if len(row) != len(d.table.Columns) {
		panic(fmt.Sprintf("columnbm: insert arity %d, table has %d columns", len(row), len(d.table.Columns)))
	}
	for c, v := range row {
		d.inserts[c] = append(d.inserts[c], v)
	}
}

// Delete marks a base-table row (or an inserted row, addressed past
// NumRows) as deleted.
func (d *DeltaStore) Delete(rowID int) {
	if rowID < 0 || rowID >= d.NumRows()+len(d.deleted) {
		panic(fmt.Sprintf("columnbm: delete of row %d out of range", rowID))
	}
	d.deleted[rowID] = true
}

// Update overwrites one row's values in the delta layer.
func (d *DeltaStore) Update(rowID int, row []int64) {
	if len(row) != len(d.table.Columns) {
		panic("columnbm: update arity mismatch")
	}
	if rowID < 0 || rowID >= d.table.NumRows+len(d.inserts[0]) {
		panic(fmt.Sprintf("columnbm: update of row %d out of range", rowID))
	}
	cp := make([]int64, len(row))
	copy(cp, row)
	d.updates[rowID] = cp
}

// NumRows returns the visible row count (base − deleted + inserted).
func (d *DeltaStore) NumRows() int {
	n := d.table.NumRows
	if len(d.inserts) > 0 {
		n += len(d.inserts[0])
	}
	return n - len(d.deleted)
}

// DeltaScanner merges the base scan with the delta structures: deleted
// rows are filtered out (predicated compaction, like any selection),
// updated rows patched, and inserted rows streamed after the base.
type DeltaScanner struct {
	d    *DeltaStore
	base *Scanner
	cols []int

	baseRow   int // absolute base-table position of the scan cursor
	insertPos int
	scratch   [][]int64
}

// NewScanner opens a merged scan over the chosen columns.
func (d *DeltaStore) NewScanner(bm *BufferManager, cols []int, vectorSize int, mode DecompressMode) *DeltaScanner {
	sc := &DeltaScanner{
		d:    d,
		base: d.table.NewScanner(bm, cols, vectorSize, mode),
		cols: cols,
	}
	sc.scratch = make([][]int64, len(cols))
	for i := range sc.scratch {
		sc.scratch[i] = make([]int64, sc.base.VectorSize())
	}
	return sc
}

// Next fills dst with the next merged vector and returns the row count,
// 0 at the end.
func (s *DeltaScanner) Next(dst [][]int64) int {
	// Base phase: scan, patch updates, compact deletes.
	for {
		n := s.base.Next(s.scratch)
		if n == 0 {
			break
		}
		out := 0
		for i := 0; i < n; i++ {
			rowID := s.baseRow + i
			if s.d.deleted[rowID] {
				continue
			}
			if upd, ok := s.d.updates[rowID]; ok {
				for c, col := range s.cols {
					dst[c][out] = upd[col]
				}
			} else {
				for c := range s.cols {
					dst[c][out] = s.scratch[c][i]
				}
			}
			out++
		}
		s.baseRow += n
		if out > 0 {
			return out
		}
	}
	// Insert phase.
	total := 0
	if len(s.d.inserts) > 0 {
		total = len(s.d.inserts[0])
	}
	vlen := s.base.VectorSize()
	out := 0
	for s.insertPos < total && out < vlen {
		rowID := s.d.table.NumRows + s.insertPos
		s.insertPos++
		if s.d.deleted[rowID] {
			continue
		}
		row, updated := s.d.updates[rowID]
		for c, col := range s.cols {
			if updated {
				dst[c][out] = row[col]
			} else {
				dst[c][out] = s.d.inserts[col][s.insertPos-1]
			}
		}
		out++
	}
	return out
}

// Merge materializes the table with all deltas applied and rebuilds it
// (re-analyzing and re-compressing every column) on the given disk — the
// periodic checkpoint that keeps the delta structures small.
func (d *DeltaStore) Merge(disk *Disk) *Table {
	t := d.table
	cols := make([][]int64, len(t.Columns))
	allIdx := make([]int, len(t.Columns))
	for i := range allIdx {
		allIdx[i] = i
	}
	bm := NewBufferManager(disk, 64<<20)
	sc := d.NewScanner(bm, allIdx, DefaultVectorSize, VectorWise)
	vec := make([][]int64, len(t.Columns))
	for i := range vec {
		vec[i] = make([]int64, DefaultVectorSize)
	}
	for {
		n := sc.Next(vec)
		if n == 0 {
			break
		}
		for c := range cols {
			cols[c] = append(cols[c], vec[c][:n]...)
		}
	}
	compress := false
	for _, ch := range t.Choices {
		if ch.Scheme != 0 { // core.SchemeNone
			compress = true
			break
		}
	}
	return BuildTable(disk, t.Name, t.Layout, t.Columns, cols, t.ChunkRows, compress)
}

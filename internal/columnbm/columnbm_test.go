package columnbm

import (
	"math/rand"
	"testing"

	"repro/internal/core"
)

// testData builds a small table's worth of columns: a sequential key, a
// clustered date-like column, a low-cardinality enum, and an incompressible
// random column.
func testData(rng *rand.Rand, n int) ([]Column, [][]int64) {
	cols := []Column{
		{Name: "key"},
		{Name: "date"},
		{Name: "flag"},
		{Name: "comment", NoCompress: true},
	}
	key := make([]int64, n)
	date := make([]int64, n)
	flag := make([]int64, n)
	comment := make([]int64, n)
	for i := 0; i < n; i++ {
		key[i] = int64(i)
		date[i] = 730_000 + rng.Int63n(2500)
		flag[i] = rng.Int63n(3)
		comment[i] = rng.Int63()
	}
	return cols, [][]int64{key, date, flag, comment}
}

func scanAll(t *testing.T, tbl *Table, bm *BufferManager, cols []int, mode DecompressMode) [][]int64 {
	t.Helper()
	sc := tbl.NewScanner(bm, cols, DefaultVectorSize, mode)
	out := make([][]int64, len(cols))
	vec := make([][]int64, len(cols))
	for i := range vec {
		vec[i] = make([]int64, DefaultVectorSize)
	}
	total := 0
	for {
		n := sc.Next(vec)
		if n == 0 {
			break
		}
		total += n
		for i := range cols {
			out[i] = append(out[i], vec[i][:n]...)
		}
	}
	if total != tbl.NumRows {
		t.Fatalf("scan returned %d rows, want %d", total, tbl.NumRows)
	}
	return out
}

func TestBuildAndScanAllLayoutsModes(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	const n = 3*DefaultChunkRows/4 + 12345 // spans chunks unevenly? (single chunk) keep small
	cols, data := testData(rng, n)

	for _, layout := range []Layout{DSM, PAX} {
		for _, compress := range []bool{true, false} {
			disk := NewDisk(80)
			tbl := BuildTable(disk, "t", layout, cols, data, 64*1024, compress)
			for _, mode := range []DecompressMode{VectorWise, PageWise} {
				bm := NewBufferManager(disk, 1<<30)
				got := scanAll(t, tbl, bm, []int{0, 1, 2, 3}, mode)
				for c := range data {
					for i := range data[c] {
						if got[c][i] != data[c][i] {
							t.Fatalf("%v/%v/compress=%v: col %d row %d: got %d want %d",
								layout, mode, compress, c, i, got[c][i], data[c][i])
						}
					}
				}
			}
		}
	}
}

func TestCompressionRatioPlausible(t *testing.T) {
	rng := rand.New(rand.NewSource(72))
	cols, data := testData(rng, 200_000)
	disk := NewDisk(80)
	tbl := BuildTable(disk, "t", DSM, cols, data, 64*1024, true)
	// key: delta-compressible to ~1-2 bits; date: ~12 bits; flag: ~2 bits;
	// comment: raw. Expect a healthy overall ratio despite the raw column.
	if r := tbl.Ratio(); r < 2.2 || r > 5 {
		t.Fatalf("table ratio %.2f outside plausible [2.2, 5]", r)
	}
	// Scheme sanity: key should be delta-coded, flag dictionary-or-PFOR,
	// comment none.
	if tbl.Choices[0].Scheme != core.SchemePFORDelta {
		t.Errorf("key chose %v, want PFOR-DELTA", tbl.Choices[0].Scheme)
	}
	if tbl.Choices[3].Scheme != core.SchemeNone {
		t.Errorf("comment chose %v, want NONE", tbl.Choices[3].Scheme)
	}
}

func TestDSMScanReadsOnlyNeededColumns(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	cols, data := testData(rng, 100_000)
	disk := NewDisk(80)
	tbl := BuildTable(disk, "t", DSM, cols, data, 64*1024, false)

	disk.ResetStats()
	bm := NewBufferManager(disk, 1<<30)
	scanAll(t, tbl, bm, []int{1}, VectorWise)
	oneCol := disk.BytesRead

	disk.ResetStats()
	bm = NewBufferManager(disk, 1<<30)
	scanAll(t, tbl, bm, []int{0, 1, 2, 3}, VectorWise)
	allCols := disk.BytesRead

	if oneCol*3 > allCols {
		t.Fatalf("DSM one-column scan read %d bytes vs %d for all four", oneCol, allCols)
	}
}

func TestPAXScanReadsWholeChunks(t *testing.T) {
	rng := rand.New(rand.NewSource(74))
	cols, data := testData(rng, 100_000)
	disk := NewDisk(80)
	tbl := BuildTable(disk, "t", PAX, cols, data, 64*1024, false)

	disk.ResetStats()
	bm := NewBufferManager(disk, 1<<30)
	scanAll(t, tbl, bm, []int{1}, VectorWise)
	oneCol := disk.BytesRead

	disk.ResetStats()
	bm = NewBufferManager(disk, 1<<30)
	scanAll(t, tbl, bm, []int{0, 1, 2, 3}, VectorWise)
	allCols := disk.BytesRead

	if oneCol != allCols {
		t.Fatalf("PAX reads whole chunks regardless: %d vs %d", oneCol, allCols)
	}
}

func TestBufferManagerCachesCompressed(t *testing.T) {
	rng := rand.New(rand.NewSource(75))
	cols, data := testData(rng, 100_000)
	disk := NewDisk(80)
	tbl := BuildTable(disk, "t", DSM, cols, data, 64*1024, true)

	bm := NewBufferManager(disk, 1<<30)
	scanAll(t, tbl, bm, []int{0, 1}, VectorWise)
	missesCold := bm.Misses
	disk.ResetStats()
	scanAll(t, tbl, bm, []int{0, 1}, VectorWise)
	if disk.Reads != 0 {
		t.Fatalf("warm scan still read %d chunks from disk", disk.Reads)
	}
	if bm.Misses != missesCold {
		t.Fatalf("warm scan missed: %d -> %d", missesCold, bm.Misses)
	}
}

func TestPageWiseCachingHoldsLessData(t *testing.T) {
	// The architectural point: under the same memory budget, decompressed
	// caching (I/O-RAM) evicts and re-reads where compressed caching
	// (RAM-CPU) still fits.
	rng := rand.New(rand.NewSource(76))
	cols, data := testData(rng, 512*1024)
	disk := NewDisk(80)
	tbl := BuildTable(disk, "t", DSM, cols, data, 64*1024, true)

	// Budget: comfortably holds the compressed key+date columns, not the
	// decompressed ones.
	budget := tbl.CompressedBytes / 2
	bmC := NewBufferManager(disk, budget)
	scanAll(t, tbl, bmC, []int{0, 1}, VectorWise)
	scanAll(t, tbl, bmC, []int{0, 1}, VectorWise)

	bmD := NewBufferManager(disk, budget)
	disk.ResetStats()
	scanAll(t, tbl, bmD, []int{0, 1}, PageWise)
	scanAll(t, tbl, bmD, []int{0, 1}, PageWise)

	if bmC.Misses >= bmD.Misses {
		t.Fatalf("compressed caching should miss less: %d vs %d", bmC.Misses, bmD.Misses)
	}
}

func TestFineGrainedGet(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	cols, data := testData(rng, 100_000)
	disk := NewDisk(80)
	for _, layout := range []Layout{DSM, PAX} {
		tbl := BuildTable(disk, "t", layout, cols, data, 64*1024, true)
		bm := NewBufferManager(disk, 1<<30)
		for trial := 0; trial < 300; trial++ {
			c := rng.Intn(len(cols))
			r := rng.Intn(tbl.NumRows)
			if got := tbl.Get(bm, c, r); got != data[c][r] {
				t.Fatalf("%v: Get(%d,%d) = %d, want %d", layout, c, r, got, data[c][r])
			}
		}
	}
}

func TestDiskAccounting(t *testing.T) {
	d := NewDisk(100) // 100 MB/s
	id := d.Write(make([]byte, 50_000_000))
	d.ResetStats()
	d.Read(id)
	rt := d.ReadTime().Seconds()
	if rt < 0.5 || rt > 0.51 {
		t.Fatalf("50MB at 100MB/s: %.3fs, want ~0.501", rt)
	}
	if d.BytesRead != 50_000_000 || d.Reads != 1 {
		t.Fatal("read accounting")
	}
}

func TestScannerEmptyTable(t *testing.T) {
	disk := NewDisk(80)
	tbl := BuildTable(disk, "empty", DSM, []Column{{Name: "a"}}, [][]int64{{}}, 1024, true)
	bm := NewBufferManager(disk, 1<<20)
	sc := tbl.NewScanner(bm, []int{0}, DefaultVectorSize, VectorWise)
	if n := sc.Next([][]int64{make([]int64, DefaultVectorSize)}); n != 0 {
		t.Fatalf("empty table scan returned %d", n)
	}
}

func TestBadVectorSizePanics(t *testing.T) {
	disk := NewDisk(80)
	tbl := BuildTable(disk, "t", DSM, []Column{{Name: "a"}}, [][]int64{{1, 2, 3}}, 1024, true)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-multiple vector size")
		}
	}()
	tbl.NewScanner(NewBufferManager(disk, 1<<20), []int{0}, 100, VectorWise)
}

package columnbm

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/segment"
)

// DecompressMode selects where decompression happens (Figure 1).
type DecompressMode int

const (
	// VectorWise is the paper's proposal: compressed pages stay in the
	// buffer pool; each Next() decompresses just one CPU-cache-sized
	// vector on the RAM/cache boundary.
	VectorWise DecompressMode = iota
	// PageWise is the conventional I/O-RAM placement: a chunk is fully
	// decompressed into a RAM-resident page when first touched, and the
	// scan memcpy's vectors out of it.
	PageWise
)

// String names the mode as in Table 3.
func (m DecompressMode) String() string {
	if m == PageWise {
		return "page-wise"
	}
	return "vector-wise"
}

// DefaultVectorSize is the scan vector length: 1024 values (8KB per int64
// column) keeps a handful of columns inside L1/L2, matching X100's "few
// hundreds to a few thousand" guidance. Must be a multiple of
// core.GroupSize.
const DefaultVectorSize = 1024

// Scanner iterates a table's rows vector-at-a-time over a chosen column
// subset. It is single-use and not goroutine-safe.
type Scanner struct {
	t    *Table
	bm   *BufferManager
	cols []int
	mode DecompressMode
	vlen int

	chunk int // current chunk index
	pos   int // row offset within chunk

	// Vector-wise state: the parsed block per column of the current chunk.
	blocks []*core.Block[int64]
	raws   [][]int64 // raw (uncompressed) segment data per column
	dec    core.Decoder[int64]

	// Page-wise state: decompressed page per column.
	page [][]int64

	// DecompressTime accumulates wall time spent decoding segments —
	// the "decompression" slice of Figure 8.
	DecompressTime time.Duration
}

// NewScanner creates a scanner over cols (indices into t.Columns).
func (t *Table) NewScanner(bm *BufferManager, cols []int, vectorSize int, mode DecompressMode) *Scanner {
	if vectorSize <= 0 {
		vectorSize = DefaultVectorSize
	}
	if vectorSize%core.GroupSize != 0 {
		panic("columnbm: vector size must be a multiple of the entry-point group size")
	}
	for _, c := range cols {
		if c < 0 || c >= len(t.Columns) {
			panic(fmt.Sprintf("columnbm: column %d out of range", c))
		}
	}
	return &Scanner{
		t: t, bm: bm, cols: cols, mode: mode, vlen: vectorSize,
		blocks: make([]*core.Block[int64], len(cols)),
		raws:   make([][]int64, len(cols)),
	}
}

// NumCols returns the number of scanned columns.
func (s *Scanner) NumCols() int { return len(s.cols) }

// VectorSize returns the scan vector length.
func (s *Scanner) VectorSize() int { return s.vlen }

// Next fills dst (one pre-allocated slice of VectorSize per scanned column)
// with the next vector and returns the number of rows, 0 at end of table.
func (s *Scanner) Next(dst [][]int64) int {
	if len(dst) != len(s.cols) {
		panic("columnbm: dst arity mismatch")
	}
	if s.chunk >= s.t.NumChunks() {
		return 0
	}
	chunkRows := s.t.chunkLen(s.chunk)
	if s.pos == 0 {
		s.openChunk()
	}
	n := min(s.vlen, chunkRows-s.pos)
	lo, hi := s.pos, s.pos+n

	switch s.mode {
	case VectorWise:
		start := time.Now()
		for i := range s.cols {
			if blk := s.blocks[i]; blk != nil {
				s.dec.DecompressRange(blk, dst[i][:n], lo, hi)
			} else {
				copy(dst[i][:n], s.raws[i][lo:hi])
			}
		}
		s.DecompressTime += time.Since(start)
	case PageWise:
		for i := range s.cols {
			copy(dst[i][:n], s.page[i][lo:hi])
		}
	}

	s.pos += n
	if s.pos >= chunkRows {
		s.chunk++
		s.pos = 0
	}
	return n
}

// openChunk loads and prepares the current chunk according to the mode.
func (s *Scanner) openChunk() {
	switch s.mode {
	case VectorWise:
		// Parse segment headers now; decode ranges lazily per vector.
		for i, c := range s.cols {
			buf := s.t.chunkSegment(s.bm, c, s.chunk)
			s.blocks[i], s.raws[i] = parseSegment(buf)
		}
	case PageWise:
		// Fully decompress the chunk into the buffer pool (decompressed
		// caching: the I/O-RAM architecture).
		if s.t.Layout == DSM {
			s.page = make([][]int64, len(s.cols))
			for i, c := range s.cols {
				id := s.t.dsmChunks[c][s.chunk]
				cols := s.bm.GetDecompressed(id, func(buf []byte) [][]int64 {
					return [][]int64{s.decodeAll(buf)}
				})
				s.page[i] = cols[0]
			}
		} else {
			id := s.t.paxChunks[s.chunk]
			all := s.bm.GetDecompressed(id, func(buf []byte) [][]int64 {
				out := make([][]int64, len(s.t.Columns))
				for c := range s.t.Columns {
					out[c] = s.decodeAll(paxSegment(buf, c))
				}
				return out
			})
			s.page = make([][]int64, len(s.cols))
			for i, c := range s.cols {
				s.page[i] = all[c]
			}
		}
	}
}

// decodeAll decompresses a whole segment, timing it.
func (s *Scanner) decodeAll(buf []byte) []int64 {
	start := time.Now()
	defer func() { s.DecompressTime += time.Since(start) }()
	blk, raw := parseSegment(buf)
	if blk == nil {
		return raw
	}
	out := make([]int64, blk.N)
	s.dec.Decompress(blk, out)
	return out
}

// parseSegment returns either the compressed block or the raw values.
func parseSegment(buf []byte) (*core.Block[int64], []int64) {
	if segment.IsCompressed(buf) {
		blk, err := segment.Unmarshal[int64](buf)
		if err != nil {
			panic("columnbm: corrupt segment: " + err.Error())
		}
		return blk, nil
	}
	vals, err := segment.UnmarshalRaw[int64](buf)
	if err != nil {
		panic("columnbm: corrupt raw segment: " + err.Error())
	}
	return nil, vals
}

// chunkLen returns the number of rows in chunk i.
func (t *Table) chunkLen(i int) int {
	lo := i * t.ChunkRows
	return min(t.ChunkRows, t.NumRows-lo)
}

// Get performs a fine-grained point lookup of (col, row) without
// decompressing the containing segment (Section 3.1, "Fine-Grained
// Access"). The segment is fetched through the buffer manager in
// compressed form.
func (t *Table) Get(bm *BufferManager, col, row int) int64 {
	if row < 0 || row >= t.NumRows {
		panic(fmt.Sprintf("columnbm: row %d out of range", row))
	}
	chunk, off := row/t.ChunkRows, row%t.ChunkRows
	buf := t.chunkSegment(bm, col, chunk)
	blk, raw := parseSegment(buf)
	if blk == nil {
		return raw[off]
	}
	return core.Get(blk, off)
}

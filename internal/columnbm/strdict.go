package columnbm

import "sort"

// StringDict implements enumerated storage for variable-width columns
// (Section 2.1, "also called 'enumerated storage'"): strings are replaced
// by dense integer codes before they enter the int64 column pipeline, and
// decoded back on output. This is how VARCHAR columns — market segments,
// ship modes, priorities, return flags — become the low-cardinality
// integer columns PDICT then compresses to a handful of bits.
//
// Codes are assigned in sorted string order, so integer comparisons on
// codes preserve the string ordering: range predicates can be evaluated
// directly on the compressed representation, the query-optimization trick
// discussed in Section 2.1 (select on gender=1 instead of
// gender="FEMALE").
type StringDict struct {
	values []string
	codes  map[string]int64
}

// BuildStringDict builds a dictionary over the distinct values of column.
func BuildStringDict(column []string) *StringDict {
	set := make(map[string]struct{}, 64)
	for _, s := range column {
		set[s] = struct{}{}
	}
	values := make([]string, 0, len(set))
	for s := range set {
		values = append(values, s)
	}
	sort.Strings(values)
	codes := make(map[string]int64, len(values))
	for i, s := range values {
		codes[s] = int64(i)
	}
	return &StringDict{values: values, codes: codes}
}

// Size returns the number of distinct values.
func (d *StringDict) Size() int { return len(d.values) }

// Encode maps a string to its code. The second result is false for
// strings outside the dictionary (an insert that would "enlarge the subset
// of used values", the overflow case dictionary compression struggles
// with — the caller must rebuild or fall back).
func (d *StringDict) Encode(s string) (int64, bool) {
	c, ok := d.codes[s]
	return c, ok
}

// Decode maps a code back to its string.
func (d *StringDict) Decode(code int64) string {
	if code < 0 || int(code) >= len(d.values) {
		panic("columnbm: string code out of range")
	}
	return d.values[code]
}

// EncodeColumn converts a string column into its int64 code column.
// Every value must be in the dictionary.
func (d *StringDict) EncodeColumn(column []string) []int64 {
	out := make([]int64, len(column))
	for i, s := range column {
		c, ok := d.codes[s]
		if !ok {
			panic("columnbm: string not in dictionary: " + s)
		}
		out[i] = c
	}
	return out
}

// DecodeColumn converts codes back into strings, appending to dst.
func (d *StringDict) DecodeColumn(dst []string, codes []int64) []string {
	for _, c := range codes {
		dst = append(dst, d.Decode(c))
	}
	return dst
}

// CodeRange returns the half-open code interval [lo, hi) of dictionary
// values s with prefix <= s < limit in string order — the translation of a
// string range predicate into an integer range predicate on codes.
func (d *StringDict) CodeRange(low, high string) (lo, hi int64) {
	lo = int64(sort.SearchStrings(d.values, low))
	hi = int64(sort.SearchStrings(d.values, high))
	return lo, hi
}

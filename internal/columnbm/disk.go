// Package columnbm implements the ColumnBM storage manager the paper
// evaluates its compression in: chunked column storage with DSM and PAX
// layouts, per-chunk automatic compression-scheme selection, a buffer
// manager that caches pages in *compressed* form, and both decompression
// placements of Figure 1 — RAM-CPU cache (vector-wise, just-in-time) and
// I/O-RAM (page-wise into decompressed buffer pages).
//
// Disks are simulated: chunk bytes live in memory and I/O cost is accounted
// as virtual time from a configured bandwidth and seek latency (DESIGN.md
// §3). This reproduces the paper's two test systems — a 4-disk RAID at
// ~80 MB/s and a 12-disk RAID at ~350 MB/s — on any machine.
package columnbm

import (
	"fmt"
	"time"
)

// ChunkID identifies a chunk on a Disk.
type ChunkID int32

// Disk is a simulated disk: storage is in-memory, time is virtual.
type Disk struct {
	// BandwidthMBps is the sequential transfer rate used for virtual I/O
	// time accounting.
	BandwidthMBps float64
	// SeekMS is the per-request positioning latency. Chunks are sized
	// (1-8 MB) so that sequential throughput dominates, as in the paper.
	SeekMS float64

	chunks [][]byte

	// Statistics (reset with ResetStats).
	BytesRead    int64
	BytesWritten int64
	Reads        int64
	Writes       int64
}

// NewDisk creates a simulated disk with the given sequential bandwidth and
// a 1ms positioning cost per request (chunks are sized so transfer dominates).
func NewDisk(bandwidthMBps float64) *Disk {
	return &Disk{BandwidthMBps: bandwidthMBps, SeekMS: 1}
}

// Write stores data as a new chunk and returns its ID.
func (d *Disk) Write(data []byte) ChunkID {
	d.chunks = append(d.chunks, data)
	d.BytesWritten += int64(len(data))
	d.Writes++
	return ChunkID(len(d.chunks) - 1)
}

// Read returns the stored chunk bytes and accounts the read. The returned
// slice aliases the stored data and must not be modified.
func (d *Disk) Read(id ChunkID) []byte {
	if int(id) < 0 || int(id) >= len(d.chunks) {
		panic(fmt.Sprintf("columnbm: read of unknown chunk %d", id))
	}
	data := d.chunks[id]
	d.BytesRead += int64(len(data))
	d.Reads++
	return data
}

// ChunkSize returns the stored size of a chunk in bytes.
func (d *Disk) ChunkSize(id ChunkID) int { return len(d.chunks[id]) }

// StoredBytes returns the total bytes stored on the disk.
func (d *Disk) StoredBytes() int64 {
	var total int64
	for _, c := range d.chunks {
		total += int64(len(c))
	}
	return total
}

// ReadTime returns the virtual time the reads performed so far would have
// taken: transfer at the configured bandwidth plus one seek per request.
func (d *Disk) ReadTime() time.Duration {
	if d.BandwidthMBps <= 0 {
		return 0
	}
	secs := float64(d.BytesRead)/(d.BandwidthMBps*1e6) + float64(d.Reads)*d.SeekMS/1e3
	return time.Duration(secs * float64(time.Second))
}

// WriteTime returns the virtual time of the writes performed so far.
// Write bandwidth is modeled at 60% of read bandwidth, reflecting the
// paper's note that "I/O write bandwidth tends to be considerably lower
// than read bandwidth".
func (d *Disk) WriteTime() time.Duration {
	if d.BandwidthMBps <= 0 {
		return 0
	}
	secs := float64(d.BytesWritten)/(0.6*d.BandwidthMBps*1e6) + float64(d.Writes)*d.SeekMS/1e3
	return time.Duration(secs * float64(time.Second))
}

// ResetStats clears the I/O counters (but keeps the stored data).
func (d *Disk) ResetStats() {
	d.BytesRead, d.BytesWritten, d.Reads, d.Writes = 0, 0, 0, 0
}

package columnbm

import (
	"math/rand"
	"testing"
)

func scanDelta(t *testing.T, d *DeltaStore, bm *BufferManager, cols []int) [][]int64 {
	t.Helper()
	sc := d.NewScanner(bm, cols, DefaultVectorSize, VectorWise)
	out := make([][]int64, len(cols))
	vec := make([][]int64, len(cols))
	for i := range vec {
		vec[i] = make([]int64, DefaultVectorSize)
	}
	total := 0
	for {
		n := sc.Next(vec)
		if n == 0 {
			break
		}
		total += n
		for i := range cols {
			out[i] = append(out[i], vec[i][:n]...)
		}
	}
	if total != d.NumRows() {
		t.Fatalf("delta scan returned %d rows, NumRows says %d", total, d.NumRows())
	}
	return out
}

func TestDeltaStorePassThrough(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	cols, data := testData(rng, 50_000)
	disk := NewDisk(80)
	tbl := BuildTable(disk, "t", DSM, cols, data, 64*1024, true)
	d := NewDeltaStore(tbl)
	bm := NewBufferManager(disk, 1<<30)
	got := scanDelta(t, d, bm, []int{0, 1, 2, 3})
	for c := range data {
		for i := range data[c] {
			if got[c][i] != data[c][i] {
				t.Fatalf("pass-through col %d row %d differs", c, i)
			}
		}
	}
}

func TestDeltaStoreInsertDeleteUpdate(t *testing.T) {
	rng := rand.New(rand.NewSource(82))
	cols, data := testData(rng, 10_000)
	disk := NewDisk(80)
	tbl := BuildTable(disk, "t", DSM, cols, data, 4096, true)
	d := NewDeltaStore(tbl)

	d.Insert([]int64{10_000, 731_000, 1, 42})
	d.Insert([]int64{10_001, 731_001, 2, 43})
	d.Delete(5)     // base row
	d.Delete(9_999) // last base row
	d.Update(7, []int64{777, 777, 777, 777})

	if want := 10_000 + 2 - 2; d.NumRows() != want {
		t.Fatalf("NumRows %d, want %d", d.NumRows(), want)
	}

	bm := NewBufferManager(disk, 1<<30)
	got := scanDelta(t, d, bm, []int{0, 1, 2, 3})

	// Build the expected view scalar-style.
	var want [][]int64 = make([][]int64, 4)
	for i := 0; i < 10_000; i++ {
		if i == 5 || i == 9_999 {
			continue
		}
		for c := 0; c < 4; c++ {
			v := data[c][i]
			if i == 7 {
				v = 777
			}
			want[c] = append(want[c], v)
		}
	}
	want[0] = append(want[0], 10_000, 10_001)
	want[1] = append(want[1], 731_000, 731_001)
	want[2] = append(want[2], 1, 2)
	want[3] = append(want[3], 42, 43)

	for c := range want {
		if len(got[c]) != len(want[c]) {
			t.Fatalf("col %d: %d rows, want %d", c, len(got[c]), len(want[c]))
		}
		for i := range want[c] {
			if got[c][i] != want[c][i] {
				t.Fatalf("col %d row %d: got %d want %d", c, i, got[c][i], want[c][i])
			}
		}
	}
}

func TestDeltaStoreDeleteInsertedRow(t *testing.T) {
	disk := NewDisk(80)
	tbl := BuildTable(disk, "t", DSM, []Column{{Name: "a"}}, [][]int64{{1, 2, 3}}, 1024, true)
	d := NewDeltaStore(tbl)
	d.Insert([]int64{4})
	d.Insert([]int64{5})
	d.Delete(3) // the first inserted row (base has 3 rows)
	bm := NewBufferManager(disk, 1<<30)
	got := scanDelta(t, d, bm, []int{0})
	want := []int64{1, 2, 3, 5}
	if len(got[0]) != len(want) {
		t.Fatalf("rows %v", got[0])
	}
	for i := range want {
		if got[0][i] != want[i] {
			t.Fatalf("got %v want %v", got[0], want)
		}
	}
}

func TestDeltaStoreMergeRecompresses(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	cols, data := testData(rng, 30_000)
	disk := NewDisk(80)
	tbl := BuildTable(disk, "t", DSM, cols, data, 4096, true)
	d := NewDeltaStore(tbl)
	for i := 0; i < 100; i++ {
		d.Insert([]int64{int64(30_000 + i), 731_000, 0, rng.Int63()})
		d.Delete(i * 7)
	}

	merged := d.Merge(disk)
	if merged.NumRows != d.NumRows() {
		t.Fatalf("merged rows %d, want %d", merged.NumRows, d.NumRows())
	}
	// Merged table must scan identically to the delta view.
	bm := NewBufferManager(disk, 1<<30)
	view := scanDelta(t, d, bm, []int{0, 1, 2, 3})
	mergedScan := scanAll(t, merged, NewBufferManager(disk, 1<<30), []int{0, 1, 2, 3}, VectorWise)
	for c := range view {
		for i := range view[c] {
			if view[c][i] != mergedScan[c][i] {
				t.Fatalf("merge mismatch col %d row %d", c, i)
			}
		}
	}
	// And stay compressed.
	if merged.Ratio() < 1.5 {
		t.Fatalf("merged table ratio %.2f, expected recompression", merged.Ratio())
	}
}

func TestDeltaStorePanics(t *testing.T) {
	disk := NewDisk(80)
	tbl := BuildTable(disk, "t", DSM, []Column{{Name: "a"}}, [][]int64{{1}}, 1024, true)
	d := NewDeltaStore(tbl)
	for name, f := range map[string]func(){
		"insert arity": func() { d.Insert([]int64{1, 2}) },
		"delete range": func() { d.Delete(99) },
		"update range": func() { d.Update(99, []int64{1}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}

package columnbm

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/core"
)

func TestStringDictRoundTrip(t *testing.T) {
	col := []string{"RAIL", "AIR", "TRUCK", "AIR", "SHIP", "RAIL", "RAIL"}
	d := BuildStringDict(col)
	if d.Size() != 4 {
		t.Fatalf("size %d, want 4", d.Size())
	}
	codes := d.EncodeColumn(col)
	back := d.DecodeColumn(nil, codes)
	for i := range col {
		if back[i] != col[i] {
			t.Fatalf("round-trip mismatch at %d: %q != %q", i, back[i], col[i])
		}
	}
}

func TestStringDictOrderPreserving(t *testing.T) {
	// Codes must preserve string order so range predicates work on codes.
	col := []string{"cherry", "apple", "banana", "date"}
	d := BuildStringDict(col)
	a, _ := d.Encode("apple")
	b, _ := d.Encode("banana")
	c, _ := d.Encode("cherry")
	if !(a < b && b < c) {
		t.Fatalf("codes not order preserving: %d %d %d", a, b, c)
	}
}

func TestStringDictUnknownValue(t *testing.T) {
	d := BuildStringDict([]string{"x"})
	if _, ok := d.Encode("y"); ok {
		t.Fatal("unknown value should miss")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("EncodeColumn with unknown value should panic")
			}
		}()
		d.EncodeColumn([]string{"y"})
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("Decode out of range should panic")
			}
		}()
		d.Decode(99)
	}()
}

func TestStringDictCodeRange(t *testing.T) {
	d := BuildStringDict([]string{"apple", "banana", "cherry", "date", "fig"})
	lo, hi := d.CodeRange("banana", "date")
	// [banana, date) = {banana, cherry} = codes 1..2.
	if lo != 1 || hi != 3 {
		t.Fatalf("range [%d,%d), want [1,3)", lo, hi)
	}
	// Probing strings not in the dictionary still brackets correctly.
	lo, hi = d.CodeRange("b", "e")
	if lo != 1 || hi != 4 {
		t.Fatalf("range [%d,%d), want [1,4)", lo, hi)
	}
}

func TestStringColumnEndToEnd(t *testing.T) {
	// The full pipeline of Section 2.1: strings -> codes -> PDICT
	// compression -> predicate on codes -> strings out.
	rng := rand.New(rand.NewSource(7))
	modes := []string{"AIR", "FOB", "MAIL", "RAIL", "REG AIR", "SHIP", "TRUCK"}
	col := make([]string, 100_000)
	for i := range col {
		col[i] = modes[rng.Intn(len(modes))]
	}
	d := BuildStringDict(col)
	codes := d.EncodeColumn(col)

	choice := core.Choose(core.Sample(codes, core.DefaultSampleSize))
	blk := choice.Compress(codes)
	if blk == nil {
		t.Fatal("7-value string column must compress")
	}
	if blk.B > 3 {
		t.Fatalf("7 distinct values should code in 3 bits, got %d", blk.B)
	}
	if blk.Ratio() < 15 {
		t.Fatalf("string enum ratio %.1f, want > 15 (64 -> ~3 bits)", blk.Ratio())
	}

	out := make([]int64, len(codes))
	core.Decompress(blk, out)
	// Count "RAIL" rows via an integer comparison on codes, then verify
	// against the strings.
	railCode, _ := d.Encode("RAIL")
	got := 0
	for _, c := range out {
		if c == railCode {
			got++
		}
	}
	want := 0
	for _, s := range col {
		if s == "RAIL" {
			want++
		}
	}
	if got != want {
		t.Fatalf("predicate on codes found %d RAIL rows, strings say %d", got, want)
	}
}

func TestStringDictLarge(t *testing.T) {
	// Dictionary of many distinct values behaves and stays consistent.
	col := make([]string, 5000)
	for i := range col {
		col[i] = fmt.Sprintf("value-%04d", i%1000)
	}
	d := BuildStringDict(col)
	if d.Size() != 1000 {
		t.Fatalf("size %d", d.Size())
	}
	codes := d.EncodeColumn(col)
	for i, c := range codes {
		if d.Decode(c) != col[i] {
			t.Fatalf("mismatch at %d", i)
		}
	}
}

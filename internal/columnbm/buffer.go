package columnbm

import (
	"container/list"
)

// BufferManager caches chunks in RAM. Its defining property — the paper's
// central architectural argument — is that it caches pages in *compressed*
// form: decompression happens later, on the RAM/CPU-cache boundary, at
// vector granularity. The page-wise (I/O-RAM) mode is also provided for
// the Figure 7 / Table 3 comparison; it caches *decompressed* arrays, which
// occupy ratio-times more room, so the same memory budget caches less data.
type BufferManager struct {
	disk     *Disk
	capacity int64

	entries map[ChunkID]*list.Element
	lru     *list.List // front = most recently used
	used    int64

	// Statistics.
	Hits   int64
	Misses int64
}

type bufEntry struct {
	id    ChunkID
	bytes []byte    // compressed chunk (vector-wise mode)
	page  [][]int64 // decompressed columns (page-wise mode)
	size  int64
}

// NewBufferManager creates a buffer pool of the given capacity over disk.
func NewBufferManager(disk *Disk, capacityBytes int64) *BufferManager {
	return &BufferManager{
		disk:     disk,
		capacity: capacityBytes,
		entries:  make(map[ChunkID]*list.Element),
		lru:      list.New(),
	}
}

// GetCompressed returns the compressed bytes of a chunk, reading it from
// disk on a miss. This is the RAM-CPU cache path: what sits in the pool is
// the compressed page.
func (bm *BufferManager) GetCompressed(id ChunkID) []byte {
	if el, ok := bm.entries[id]; ok {
		e := el.Value.(*bufEntry)
		if e.bytes != nil {
			bm.Hits++
			bm.lru.MoveToFront(el)
			return e.bytes
		}
		// Cached only in decompressed form (mode mixing): drop and reload.
		bm.evictEntry(el)
	}
	bm.Misses++
	data := bm.disk.Read(id)
	bm.insert(&bufEntry{id: id, bytes: data, size: int64(len(data))})
	return data
}

// GetDecompressed returns the fully decompressed columns of a chunk,
// decoding via decode on a miss. This is the I/O-RAM path: the pool holds
// the decompressed page, costing ratio-times more capacity and an extra
// RAM round trip.
func (bm *BufferManager) GetDecompressed(id ChunkID, decode func([]byte) [][]int64) [][]int64 {
	if el, ok := bm.entries[id]; ok {
		e := el.Value.(*bufEntry)
		if e.page != nil {
			bm.Hits++
			bm.lru.MoveToFront(el)
			return e.page
		}
		bm.evictEntry(el)
	}
	bm.Misses++
	data := bm.disk.Read(id)
	page := decode(data)
	size := int64(0)
	for _, col := range page {
		size += int64(len(col) * 8)
	}
	bm.insert(&bufEntry{id: id, page: page, size: size})
	return page
}

func (bm *BufferManager) insert(e *bufEntry) {
	for bm.used+e.size > bm.capacity && bm.lru.Len() > 0 {
		bm.evictEntry(bm.lru.Back())
	}
	el := bm.lru.PushFront(e)
	bm.entries[e.id] = el
	bm.used += e.size
}

func (bm *BufferManager) evictEntry(el *list.Element) {
	e := el.Value.(*bufEntry)
	bm.lru.Remove(el)
	delete(bm.entries, e.id)
	bm.used -= e.size
}

// Used returns the bytes currently held in the pool.
func (bm *BufferManager) Used() int64 { return bm.used }

// Cached reports whether a chunk is resident.
func (bm *BufferManager) Cached(id ChunkID) bool {
	_, ok := bm.entries[id]
	return ok
}

// ResetStats clears hit/miss counters.
func (bm *BufferManager) ResetStats() { bm.Hits, bm.Misses = 0, 0 }

// Clear drops all cached chunks.
func (bm *BufferManager) Clear() {
	bm.entries = make(map[ChunkID]*list.Element)
	bm.lru.Init()
	bm.used = 0
}

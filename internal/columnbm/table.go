package columnbm

import (
	"encoding/binary"
	"fmt"

	"repro/internal/core"
	"repro/internal/segment"
)

// Layout selects the physical chunk layout.
type Layout int

const (
	// DSM stores each column in its own sequence of chunks (Copeland &
	// Khoshafian's Decomposition Storage Model): a scan touching k of n
	// columns reads only k/n of the data.
	DSM Layout = iota
	// PAX stores, inside each chunk, one segment per column covering the
	// same rows (Ailamaki et al.): every scan reads whole chunks, but a
	// single chunk delivers complete tuples, which favors OLTP-ish access.
	PAX
)

// String names the layout as in the paper's tables.
func (l Layout) String() string {
	if l == PAX {
		return "PAX"
	}
	return "DSM"
}

// Column describes one table column. All values are int64 at this layer:
// strings arrive dictionary-encoded, decimals scaled, dates as day numbers
// (the enumerated-storage convention of MonetDB/X100).
type Column struct {
	Name string
	// NoCompress marks columns the patched schemes cannot help (the
	// paper's "comment" fields, which it likewise could not compress).
	NoCompress bool
}

// Table is a chunked, compressed, immutable table on a simulated disk.
type Table struct {
	Name      string
	Columns   []Column
	Layout    Layout
	NumRows   int
	ChunkRows int

	disk *Disk
	// DSM: dsmChunks[col][chunk]; PAX: paxChunks[chunk].
	dsmChunks [][]ChunkID
	paxChunks []ChunkID

	// Choices records the analyzer's per-column decision (made once on a
	// sample, as in Section 3.1; parameters apply to every chunk).
	Choices []core.Choice[int64]

	// Size accounting for compression-ratio reporting.
	UncompressedBytes int64
	CompressedBytes   int64
}

// DefaultChunkRows is sized so an uncompressed int64 DSM segment is 2MB —
// inside the paper's 1-8MB chunk window.
const DefaultChunkRows = 256 * 1024

// BuildTable compresses data (one slice per column, equal lengths) into
// chunks on disk and returns the table. compress=false stores everything
// raw (the "uncompressed" configurations of Table 2).
func BuildTable(disk *Disk, name string, layout Layout, cols []Column, data [][]int64, chunkRows int, compress bool) *Table {
	if len(cols) != len(data) {
		panic("columnbm: column count mismatch")
	}
	if chunkRows <= 0 {
		chunkRows = DefaultChunkRows
	}
	if chunkRows%core.GroupSize != 0 {
		panic("columnbm: chunk rows must be a multiple of the entry-point group size")
	}
	numRows := 0
	if len(data) > 0 {
		numRows = len(data[0])
		for c := range data {
			if len(data[c]) != numRows {
				panic("columnbm: ragged columns")
			}
		}
	}
	t := &Table{
		Name: name, Columns: cols, Layout: layout,
		NumRows: numRows, ChunkRows: chunkRows, disk: disk,
		Choices: make([]core.Choice[int64], len(cols)),
	}

	// One analysis pass per column over a sample (Section 3.1: "first
	// gather a sample (e.g. s=64K values) and look for the best settings").
	for c := range cols {
		if !compress || cols[c].NoCompress {
			t.Choices[c] = core.Choice[int64]{Scheme: core.SchemeNone}
			continue
		}
		t.Choices[c] = core.Choose(core.Sample(data[c], core.DefaultSampleSize))
	}

	numChunks := (numRows + chunkRows - 1) / chunkRows
	if layout == DSM {
		t.dsmChunks = make([][]ChunkID, len(cols))
		for c := range cols {
			t.dsmChunks[c] = make([]ChunkID, 0, numChunks)
		}
	}
	for chunk := 0; chunk < numChunks; chunk++ {
		lo := chunk * chunkRows
		hi := min(lo+chunkRows, numRows)
		if layout == DSM {
			for c := range cols {
				seg := t.encodeSegment(c, data[c][lo:hi])
				t.dsmChunks[c] = append(t.dsmChunks[c], disk.Write(seg))
			}
		} else {
			segs := make([][]byte, len(cols))
			for c := range cols {
				segs[c] = t.encodeSegment(c, data[c][lo:hi])
			}
			t.paxChunks = append(t.paxChunks, disk.Write(packPAX(segs)))
		}
	}
	t.UncompressedBytes = int64(numRows) * int64(len(cols)) * 8
	return t
}

// encodeSegment compresses one column-chunk with the column's chosen
// scheme, falling back to raw storage when compression does not pay on
// this particular chunk.
func (t *Table) encodeSegment(col int, vals []int64) []byte {
	choice := t.Choices[col]
	if choice.Scheme != core.SchemeNone {
		blk := choice.Compress(vals)
		buf := segment.Marshal(blk)
		if len(buf) < len(vals)*8 {
			t.CompressedBytes += int64(len(buf))
			return buf
		}
	}
	buf := segment.MarshalRaw(vals)
	t.CompressedBytes += int64(len(buf))
	return buf
}

// NumChunks returns the number of row ranges.
func (t *Table) NumChunks() int {
	return (t.NumRows + t.ChunkRows - 1) / t.ChunkRows
}

// Ratio returns the table-wide compression ratio.
func (t *Table) Ratio() float64 {
	if t.CompressedBytes == 0 {
		return 1
	}
	return float64(t.UncompressedBytes) / float64(t.CompressedBytes)
}

// ScanBytes returns the bytes a full scan of the given columns reads from
// disk: per-column chunks under DSM, every chunk under PAX.
func (t *Table) ScanBytes(cols []int) int64 {
	var total int64
	if t.Layout == DSM {
		for _, c := range cols {
			for _, id := range t.dsmChunks[c] {
				total += int64(t.disk.ChunkSize(id))
			}
		}
		return total
	}
	for _, id := range t.paxChunks {
		total += int64(t.disk.ChunkSize(id))
	}
	return total
}

// packPAX concatenates per-column segments with a little directory:
// [n uint32][end_0 uint32]...[end_n-1 uint32][seg_0]...[seg_n-1].
func packPAX(segs [][]byte) []byte {
	size := 4 + 4*len(segs)
	for _, s := range segs {
		size += len(s)
	}
	buf := make([]byte, 4+4*len(segs), size)
	binary.LittleEndian.PutUint32(buf, uint32(len(segs)))
	end := 0
	for i, s := range segs {
		end += len(s)
		binary.LittleEndian.PutUint32(buf[4+4*i:], uint32(end))
	}
	for _, s := range segs {
		buf = append(buf, s...)
	}
	return buf
}

// paxSegment extracts column c's segment from a PAX chunk.
func paxSegment(chunk []byte, c int) []byte {
	n := int(binary.LittleEndian.Uint32(chunk))
	if c < 0 || c >= n {
		panic(fmt.Sprintf("columnbm: PAX column %d of %d", c, n))
	}
	dirEnd := 4 + 4*n
	start := 0
	if c > 0 {
		start = int(binary.LittleEndian.Uint32(chunk[4+4*(c-1):]))
	}
	end := int(binary.LittleEndian.Uint32(chunk[4+4*c:]))
	return chunk[dirEnd+start : dirEnd+end]
}

// chunkSegment returns the serialized segment for (column, chunk) under
// either layout, going through the buffer manager.
func (t *Table) chunkSegment(bm *BufferManager, col, chunk int) []byte {
	if t.Layout == DSM {
		return bm.GetCompressed(t.dsmChunks[col][chunk])
	}
	return paxSegment(bm.GetCompressed(t.paxChunks[chunk]), col)
}

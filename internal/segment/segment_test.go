package segment

import (
	"math/rand"
	"testing"

	"repro/internal/core"
)

func checkBlockEqual[T core.Integer](t *testing.T, got, want *core.Block[T], src []T) {
	t.Helper()
	if got.Scheme != want.Scheme || got.B != want.B || got.N != want.N ||
		got.Base != want.Base || got.DeltaBase != want.DeltaBase || got.DictLen != want.DictLen {
		t.Fatalf("header mismatch: got %+v", got)
	}
	out := make([]T, got.N)
	core.Decompress(got, out)
	for i := range src {
		if out[i] != src[i] {
			t.Fatalf("decode-after-unmarshal mismatch at %d: got %v want %v", i, out[i], src[i])
		}
	}
}

func TestMarshalRoundTripPFOR(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	src := make([]int64, 5000)
	for i := range src {
		src[i] = 100 + rng.Int63n(200)
		if rng.Float64() < 0.1 {
			src[i] = rng.Int63()
		}
	}
	blk := core.CompressPFOR(src, 100, 8)
	buf := Marshal(blk)
	got, err := Unmarshal[int64](buf)
	if err != nil {
		t.Fatal(err)
	}
	checkBlockEqual(t, got, blk, src)
}

func TestMarshalRoundTripPFORDelta(t *testing.T) {
	src := make([]int32, 1000)
	acc := int32(0)
	rng := rand.New(rand.NewSource(2))
	for i := range src {
		acc += rng.Int31n(50)
		src[i] = acc
	}
	blk := core.CompressPFORDelta(src, 0, 0, 6)
	got, err := Unmarshal[int32](Marshal(blk))
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Totals) != len(blk.Totals) {
		t.Fatalf("totals lost: %d vs %d", len(got.Totals), len(blk.Totals))
	}
	checkBlockEqual(t, got, blk, src)
	// Fine-grained access must survive serialization.
	for _, x := range []int{0, 127, 128, 500, 999} {
		if core.Get(got, x) != src[x] {
			t.Fatalf("Get(%d) after round-trip differs", x)
		}
	}
}

func TestMarshalRoundTripPDict(t *testing.T) {
	dict := []uint16{7, 77, 777, 7777}
	rng := rand.New(rand.NewSource(3))
	src := make([]uint16, 2000)
	for i := range src {
		if rng.Float64() < 0.9 {
			src[i] = dict[rng.Intn(4)]
		} else {
			src[i] = uint16(rng.Intn(1 << 16))
		}
	}
	blk := core.CompressPDict(src, dict, 2)
	got, err := Unmarshal[uint16](Marshal(blk))
	if err != nil {
		t.Fatal(err)
	}
	checkBlockEqual(t, got, blk, src)
}

func TestMarshalAllElementWidths(t *testing.T) {
	testWidth[int8](t, 4)
	testWidth[uint8](t, 4)
	testWidth[int16](t, 8)
	testWidth[int32](t, 12)
	testWidth[uint64](t, 16)
}

func testWidth[T core.Integer](t *testing.T, b uint) {
	t.Helper()
	src := make([]T, 300)
	for i := range src {
		src[i] = T(i % 13)
	}
	src[5] = T(1) << 6 // force at least the possibility of exceptions
	blk := core.CompressPFOR(src, 0, b)
	got, err := Unmarshal[T](Marshal(blk))
	if err != nil {
		t.Fatal(err)
	}
	checkBlockEqual(t, got, blk, src)
}

func TestNegativeBasesSurvive(t *testing.T) {
	src := []int64{-100, -99, -98, -1000000}
	blk := core.CompressPFOR(src, -100, 4)
	got, err := Unmarshal[int64](Marshal(blk))
	if err != nil {
		t.Fatal(err)
	}
	if got.Base != -100 {
		t.Fatalf("base %d, want -100", got.Base)
	}
	checkBlockEqual(t, got, blk, src)
}

func TestUnmarshalErrors(t *testing.T) {
	blk := core.CompressPFOR([]int64{1, 2, 3}, 0, 4)
	good := Marshal(blk)

	if _, err := Unmarshal[int64](good[:10]); err == nil {
		t.Error("truncated header should fail")
	}
	if _, err := Unmarshal[int64](good[:len(good)-2]); err == nil {
		t.Error("truncated body should fail")
	}
	bad := append([]byte(nil), good...)
	bad[0] = 0x00
	if _, err := Unmarshal[int64](bad); err == nil {
		t.Error("bad magic should fail")
	}
	bad = append(bad[:0], good...)
	bad[1] = 99
	if _, err := Unmarshal[int64](bad); err == nil {
		t.Error("bad scheme should fail")
	}
	// Element-width mismatch: int32 reader on an int64 segment.
	if _, err := Unmarshal[int32](good); err == nil {
		t.Error("element size mismatch should fail")
	}
}

func TestRawRoundTrip(t *testing.T) {
	src := []int64{-5, 0, 9, 1 << 62}
	buf := MarshalRaw(src)
	if IsCompressed(buf) {
		t.Fatal("raw segment misreported as compressed")
	}
	got, err := UnmarshalRaw[int64](buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := range src {
		if got[i] != src[i] {
			t.Fatalf("raw mismatch at %d", i)
		}
	}

	blk := core.CompressPFOR(src, 0, 4)
	if !IsCompressed(Marshal(blk)) {
		t.Fatal("compressed segment misreported as raw")
	}
}

func TestExceptionSectionGrowsBackwards(t *testing.T) {
	// Layout check: the last exception value written must sit at the very
	// end of the buffer (Figure 3's backward-growing exception section).
	src := []int64{0, 1, 1 << 40, 2}
	blk := core.CompressPFOR(src, 0, 2)
	if blk.ExceptionCount() != 1 {
		t.Fatalf("want 1 exception, got %d", blk.ExceptionCount())
	}
	buf := Marshal(blk)
	tail := int64(uint64(buf[len(buf)-8]) | uint64(buf[len(buf)-7])<<8 |
		uint64(buf[len(buf)-6])<<16 | uint64(buf[len(buf)-5])<<24 |
		uint64(buf[len(buf)-4])<<32 | uint64(buf[len(buf)-3])<<40 |
		uint64(buf[len(buf)-2])<<48 | uint64(buf[len(buf)-1])<<56)
	if tail != 1<<40 {
		t.Fatalf("exception not at segment tail: got %d", tail)
	}
}

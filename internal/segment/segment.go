// Package segment serializes compressed blocks to the on-page layout of
// Figure 3 of the paper: a fixed-size header, the entry-point section for
// fine-grained access, a forward-growing code section, and an exception
// section that grows backwards from the end of the segment.
//
// ColumnBM stores one segment per chunk (DSM) or one segment per column per
// chunk (PAX); this package is only concerned with the byte layout of a
// single segment.
package segment

import (
	"encoding/binary"
	"errors"
	"fmt"

	"repro/internal/core"
)

// Errors returned by Unmarshal.
var (
	ErrTooShort  = errors.New("segment: buffer too short")
	ErrBadMagic  = errors.New("segment: bad magic byte")
	ErrBadScheme = errors.New("segment: unknown compression scheme")
	ErrCorrupt   = errors.New("segment: inconsistent section sizes")
	ErrChecksum  = errors.New("segment: payload checksum mismatch")
)

// Magic is the first byte of every serialized segment, raw or compressed.
const Magic = 0xC5 // "compressed segment"

const (
	magic      = Magic
	headerSize = 44 // includes the payload checksum at offset 40
)

// fnv32 is FNV-1a over the segment payload; it guards the decompression
// kernels (whose patch-list walks trust their inputs) against corrupt or
// truncated pages.
func fnv32(data []byte) uint32 {
	h := uint32(2166136261)
	for _, b := range data {
		h = (h ^ uint32(b)) * 16777619
	}
	return h
}

// Marshal serializes blk into the Figure-3 segment layout and returns the
// byte slice. The exception section is written in reverse order at the tail
// of the segment, matching the paper's backward-growing exception area.
func Marshal[T core.Integer](blk *core.Block[T]) []byte {
	elem := elemSize[T]()
	numGroups := len(blk.Entries)
	size := headerSize + numGroups*4 + blk.DictLen*elem + len(blk.Totals)*elem +
		len(blk.Codes)*4 + len(blk.Exc)*elem
	buf := make([]byte, size)

	// Header.
	buf[0] = magic
	buf[1] = byte(blk.Scheme)
	buf[2] = byte(blk.B)
	buf[3] = byte(elem)
	binary.LittleEndian.PutUint32(buf[4:], uint32(blk.N))
	binary.LittleEndian.PutUint64(buf[8:], toBits(blk.Base))
	binary.LittleEndian.PutUint64(buf[16:], toBits(blk.DeltaBase))
	binary.LittleEndian.PutUint32(buf[24:], uint32(blk.DictLen))
	binary.LittleEndian.PutUint32(buf[28:], uint32(len(blk.Exc)))
	binary.LittleEndian.PutUint32(buf[32:], uint32(len(blk.Codes)))
	flags := uint32(0)
	if len(blk.Totals) > 0 {
		flags |= 1
	}
	binary.LittleEndian.PutUint32(buf[36:], flags)

	// Entry-point section.
	off := headerSize
	for _, e := range blk.Entries {
		binary.LittleEndian.PutUint32(buf[off:], e)
		off += 4
	}
	// Dictionary (PDICT): only the meaningful entries travel to disk.
	off = putValues(buf, off, blk.Dict[:blk.DictLen])
	// Running totals (PFOR-DELTA).
	off = putValues(buf, off, blk.Totals)
	// Code section (forward-growing).
	for _, w := range blk.Codes {
		binary.LittleEndian.PutUint32(buf[off:], w)
		off += 4
	}
	// Exception section: grows backwards from the end of the segment, so
	// exception k lives at size - (k+1)*elem.
	for k, v := range blk.Exc {
		putValue(buf[size-(k+1)*elem:], v)
	}
	binary.LittleEndian.PutUint32(buf[40:], fnv32(buf[headerSize:]))
	return buf
}

// Unmarshal parses a segment produced by Marshal. The element type must
// match the one used at Marshal time (enforced by the element-size byte).
func Unmarshal[T core.Integer](buf []byte) (*core.Block[T], error) {
	blk := new(core.Block[T])
	if err := UnmarshalInto(blk, buf); err != nil {
		return nil, err
	}
	return blk, nil
}

// UnmarshalInto parses a segment produced by Marshal into blk, reusing
// blk's section slices whenever their capacity suffices. Recycling one
// Block across every segment of a column is the zero-allocation steady
// state of a block-at-a-time scan. blk is overwritten completely; on error
// its contents are unspecified.
func UnmarshalInto[T core.Integer](blk *core.Block[T], buf []byte) error {
	return unmarshalInto(blk, buf, true)
}

// UnmarshalIntoTrusted is UnmarshalInto without the payload checksum pass.
// The FNV hash walks the payload byte by byte and dominates the parse cost
// of large segments, but it is redundant when the caller has already
// integrity-checked the same bytes — the ZKC2 column reader verifies a
// hardware CRC32-C over every frame before handing it to the decoder. All
// structural header validation (scheme, width, section sizes, entry-point
// invariants) still runs; only the redundant hash is skipped. Callers
// without an outer integrity check must use UnmarshalInto.
func UnmarshalIntoTrusted[T core.Integer](blk *core.Block[T], buf []byte) error {
	return unmarshalInto(blk, buf, false)
}

func unmarshalInto[T core.Integer](blk *core.Block[T], buf []byte, verify bool) error {
	if len(buf) < headerSize {
		return ErrTooShort
	}
	if buf[0] != magic {
		return ErrBadMagic
	}
	scheme := core.Scheme(buf[1])
	switch scheme {
	case core.SchemePFOR, core.SchemePFORDelta, core.SchemePDict:
	default:
		return ErrBadScheme
	}
	elem := elemSize[T]()
	if int(buf[3]) != elem {
		return fmt.Errorf("%w: element size %d, decoding as %d", ErrCorrupt, buf[3], elem)
	}
	blk.Scheme, blk.B = scheme, uint(buf[2])
	blk.N = int(binary.LittleEndian.Uint32(buf[4:]))
	blk.Base = fromBits[T](binary.LittleEndian.Uint64(buf[8:]))
	blk.DeltaBase = fromBits[T](binary.LittleEndian.Uint64(buf[16:]))
	blk.DictLen = int(binary.LittleEndian.Uint32(buf[24:]))
	excCount := int(binary.LittleEndian.Uint32(buf[28:]))
	codeWords := int(binary.LittleEndian.Uint32(buf[32:]))
	flags := binary.LittleEndian.Uint32(buf[36:])

	if blk.B < 1 || blk.B > 32 || blk.N < 0 || blk.N > core.MaxBlockValues || excCount > blk.N || excCount < 0 {
		return ErrCorrupt
	}
	// The header fields must be mutually consistent — the decompression
	// kernels trust them (a corrupted width would make the code section
	// appear shorter or longer than it is).
	if codeWords != (blk.N*int(blk.B)+31)/32 {
		return ErrCorrupt
	}
	if blk.DictLen < 0 || (scheme == core.SchemePDict) != (blk.DictLen > 0) {
		return ErrCorrupt
	}
	// The decoder materializes a dictionary of 1<<B entries so LOOP1 can
	// index it with bogus gap codes; an unchecked width would let a
	// 50-byte frame demand a 32GB allocation. Legitimate producers never
	// exceed MaxDictBits (the analyzer's cap).
	if scheme == core.SchemePDict && blk.B > core.MaxDictBits {
		return fmt.Errorf("%w: PDICT width %d exceeds %d bits", ErrCorrupt, blk.B, core.MaxDictBits)
	}
	if blk.B > uint(elem)*8 {
		return ErrCorrupt
	}
	numGroups := (blk.N + core.GroupSize - 1) / core.GroupSize
	numTotals := 0
	if flags&1 != 0 {
		numTotals = numGroups
	}
	size := headerSize + numGroups*4 + blk.DictLen*elem + numTotals*elem + codeWords*4 + excCount*elem
	if len(buf) < size {
		return ErrTooShort
	}
	if verify && binary.LittleEndian.Uint32(buf[40:]) != fnv32(buf[headerSize:size]) {
		return ErrChecksum
	}

	off := headerSize
	blk.Entries = sized(blk.Entries, numGroups)
	prevExc := uint32(0)
	for g := range blk.Entries {
		e := binary.LittleEndian.Uint32(buf[off:])
		// Entry words must point into the exception section in
		// non-decreasing order, and a group's patch start must lie inside
		// the group — the patch-walk kernels trust both invariants.
		exc := e >> 7
		if exc < prevExc || int(exc) > excCount {
			return fmt.Errorf("%w: entry point %d", ErrCorrupt, g)
		}
		prevExc = exc
		if gLen := blk.N - g*core.GroupSize; int(e&0x7F) >= gLen && gLen < core.GroupSize {
			return fmt.Errorf("%w: entry point %d patch start", ErrCorrupt, g)
		}
		blk.Entries[g] = e
		off += 4
	}
	if blk.DictLen > 0 {
		if blk.DictLen > 1<<blk.B {
			return ErrCorrupt
		}
		// The dictionary stays zero-padded to 1<<B entries so LOOP1 can
		// index it with any b-bit code; a recycled slice must have its
		// stale tail cleared to keep that invariant.
		blk.Dict = sized(blk.Dict, 1<<blk.B)
		off = getValues(buf, off, blk.Dict[:blk.DictLen])
		clear(blk.Dict[blk.DictLen:])
	} else {
		blk.Dict = blk.Dict[:0]
	}
	blk.Totals = sized(blk.Totals, numTotals)
	if numTotals > 0 {
		off = getValues(buf, off, blk.Totals)
	}
	blk.Codes = sized(blk.Codes, codeWords)
	codes := buf[off : off+codeWords*4]
	for i := range blk.Codes {
		blk.Codes[i] = binary.LittleEndian.Uint32(codes[i*4:])
	}
	off += codeWords * 4
	blk.Exc = sized(blk.Exc, excCount)
	for k := range blk.Exc {
		blk.Exc[k] = getValue[T](buf[size-(k+1)*elem:])
	}
	return nil
}

// sized returns s resized to n elements, reusing its backing array when
// capacity allows and allocating otherwise. Contents are unspecified.
func sized[E any](s []E, n int) []E {
	if cap(s) >= n {
		return s[:n]
	}
	return make([]E, n)
}

// MarshalRaw serializes an uncompressed value array (SchemeNone storage).
func MarshalRaw[T core.Integer](vals []T) []byte {
	elem := elemSize[T]()
	buf := make([]byte, 8+len(vals)*elem)
	buf[0] = magic
	buf[1] = byte(core.SchemeNone)
	buf[2] = byte(elem)
	binary.LittleEndian.PutUint32(buf[4:], uint32(len(vals)))
	putValues(buf, 8, vals)
	return buf
}

// UnmarshalRaw parses a MarshalRaw segment.
func UnmarshalRaw[T core.Integer](buf []byte) ([]T, error) {
	if len(buf) < 8 {
		return nil, ErrTooShort
	}
	if buf[0] != magic || core.Scheme(buf[1]) != core.SchemeNone {
		return nil, ErrBadMagic
	}
	elem := elemSize[T]()
	if int(buf[2]) != elem {
		return nil, ErrCorrupt
	}
	n := int(binary.LittleEndian.Uint32(buf[4:]))
	if len(buf) < 8+n*elem {
		return nil, ErrTooShort
	}
	vals := make([]T, n)
	getValues(buf, 8, vals)
	return vals, nil
}

// IsCompressed reports whether buf holds a compressed (patched-scheme)
// segment rather than a raw one.
func IsCompressed(buf []byte) bool {
	return len(buf) >= 2 && buf[0] == magic && core.Scheme(buf[1]) != core.SchemeNone
}

// FrameSize returns the total byte length of the segment frame starting at
// buf[0], derived from the header alone — buf may extend past the frame or
// stop short of it. Every section length is a function of the header
// fields, which is what lets a recovery pass walk back-to-back frames with
// no directory to consult. The header is validated with the same structural
// checks unmarshalInto applies, but the payload itself is not: callers
// salvaging untrusted bytes must still decode the full frame before
// believing it.
func FrameSize(buf []byte) (int, error) {
	if len(buf) < 8 {
		return 0, ErrTooShort
	}
	if buf[0] != magic {
		return 0, ErrBadMagic
	}
	scheme := core.Scheme(buf[1])
	if scheme == core.SchemeNone {
		elem := int(buf[2])
		if elem != 1 && elem != 2 && elem != 4 && elem != 8 {
			return 0, ErrCorrupt
		}
		n := int(binary.LittleEndian.Uint32(buf[4:]))
		if n > core.MaxBlockValues {
			return 0, ErrCorrupt
		}
		return 8 + n*elem, nil
	}
	switch scheme {
	case core.SchemePFOR, core.SchemePFORDelta, core.SchemePDict:
	default:
		return 0, ErrBadScheme
	}
	if len(buf) < headerSize {
		return 0, ErrTooShort
	}
	b := uint(buf[2])
	elem := int(buf[3])
	if elem != 1 && elem != 2 && elem != 4 && elem != 8 {
		return 0, ErrCorrupt
	}
	n := int(binary.LittleEndian.Uint32(buf[4:]))
	dictLen := int(binary.LittleEndian.Uint32(buf[24:]))
	excCount := int(binary.LittleEndian.Uint32(buf[28:]))
	codeWords := int(binary.LittleEndian.Uint32(buf[32:]))
	flags := binary.LittleEndian.Uint32(buf[36:])
	if b < 1 || b > 32 || b > uint(elem)*8 || n < 0 || n > core.MaxBlockValues || excCount < 0 || excCount > n {
		return 0, ErrCorrupt
	}
	if codeWords != (n*int(b)+31)/32 {
		return 0, ErrCorrupt
	}
	if dictLen < 0 || (scheme == core.SchemePDict) != (dictLen > 0) {
		return 0, ErrCorrupt
	}
	if scheme == core.SchemePDict && (b > core.MaxDictBits || dictLen > 1<<b) {
		return 0, ErrCorrupt
	}
	numGroups := (n + core.GroupSize - 1) / core.GroupSize
	numTotals := 0
	if flags&1 != 0 {
		numTotals = numGroups
	}
	return headerSize + numGroups*4 + dictLen*elem + numTotals*elem + codeWords*4 + excCount*elem, nil
}

func elemSize[T core.Integer]() int {
	var v T
	switch any(v).(type) {
	case int8, uint8:
		return 1
	case int16, uint16:
		return 2
	case int32, uint32:
		return 4
	default:
		return 8
	}
}

// toBits widens a value to its 64-bit two's-complement image.
func toBits[T core.Integer](v T) uint64 { return uint64(int64(v)) }

// fromBits truncates a 64-bit image back to T.
func fromBits[T core.Integer](u uint64) T { return T(u) }

func putValue[T core.Integer](buf []byte, v T) {
	switch elemSize[T]() {
	case 1:
		buf[0] = byte(v)
	case 2:
		binary.LittleEndian.PutUint16(buf, uint16(v))
	case 4:
		binary.LittleEndian.PutUint32(buf, uint32(v))
	default:
		binary.LittleEndian.PutUint64(buf, uint64(v))
	}
}

func getValue[T core.Integer](buf []byte) T {
	switch elemSize[T]() {
	case 1:
		return T(buf[0])
	case 2:
		return T(binary.LittleEndian.Uint16(buf))
	case 4:
		return T(binary.LittleEndian.Uint32(buf))
	default:
		return T(binary.LittleEndian.Uint64(buf))
	}
}

func putValues[T core.Integer](buf []byte, off int, vals []T) int {
	elem := elemSize[T]()
	for _, v := range vals {
		putValue(buf[off:], v)
		off += elem
	}
	return off
}

func getValues[T core.Integer](buf []byte, off int, vals []T) int {
	elem := elemSize[T]()
	for i := range vals {
		vals[i] = getValue[T](buf[off:])
		off += elem
	}
	return off
}

package segment

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/core"
)

// TestChecksumDetectsBitFlips: any single corrupted payload byte must be
// rejected before the decompression kernels (which trust their inputs)
// ever see it.
func TestChecksumDetectsBitFlips(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	src := make([]int64, 3000)
	for i := range src {
		src[i] = rng.Int63n(1000)
		if rng.Intn(20) == 0 {
			src[i] = rng.Int63()
		}
	}
	blk := core.CompressPFOR(src, 0, 10)
	good := Marshal(blk)
	if _, err := Unmarshal[int64](good); err != nil {
		t.Fatalf("pristine segment rejected: %v", err)
	}

	for trial := 0; trial < 200; trial++ {
		bad := append([]byte(nil), good...)
		pos := 44 + rng.Intn(len(bad)-44) // payload only; header has its own checks
		bit := byte(1 << rng.Intn(8))
		bad[pos] ^= bit
		if _, err := Unmarshal[int64](bad); !errors.Is(err, ErrChecksum) {
			t.Fatalf("flip at %d: err = %v, want ErrChecksum", pos, err)
		}
	}
}

// TestHeaderCorruptionNeverPanics: arbitrary header damage must produce an
// error, not a panic or an out-of-bounds access.
func TestHeaderCorruptionNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(102))
	blk := core.CompressPFORDelta([]int64{1, 5, 9, 1000, 1001}, 0, 0, 4)
	good := Marshal(blk)

	for trial := 0; trial < 2000; trial++ {
		bad := append([]byte(nil), good...)
		// Corrupt 1-4 random bytes anywhere.
		for k := 0; k < 1+rng.Intn(4); k++ {
			bad[rng.Intn(len(bad))] ^= byte(1 + rng.Intn(255))
		}
		// Also randomly truncate sometimes.
		if rng.Intn(4) == 0 {
			bad = bad[:rng.Intn(len(bad)+1)]
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("Unmarshal panicked on corrupt input: %v", r)
				}
			}()
			if got, err := Unmarshal[int64](bad); err == nil {
				// The (astronomically unlikely) event that corruption kept
				// the checksum valid: the block must still decode within
				// its own bounds.
				out := make([]int64, got.N)
				core.Decompress(got, out)
			}
		}()
	}
}

// TestRawSegmentTruncation: raw segments validate their length too.
func TestRawSegmentTruncation(t *testing.T) {
	buf := MarshalRaw([]int64{1, 2, 3})
	for cut := 0; cut < len(buf); cut++ {
		if _, err := UnmarshalRaw[int64](buf[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}

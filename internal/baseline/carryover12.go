package baseline

// Carryover12 implements the word-aligned binary coding scheme of Anh &
// Moffat ("Inverted index compression using word-aligned binary codes",
// Information Retrieval 8(1), 2005) — the paper's fastest inverted-file
// comparator in Table 4.
//
// Values are packed into 32-bit words; each word holds k values of w bits,
// with (k,w) chosen from a table of 12 combinations by a 4-bit selector.
// The "carryover" refinement: when a word's payload leaves at least 4
// unused high bits, the selector of the *next* word is carried in them, so
// the next word keeps all 32 bits for data. (The exact 2005 selector tables
// are not reproducible offline; these 12-entry tables follow the paper's
// construction and preserve the codec's speed/ratio character — see
// DESIGN.md §3.)
type Carryover12 struct{}

// Name returns the codec name used in reports.
func (Carryover12) Name() string { return "carryover-12" }

// combo describes one selector choice: count values of width bits each.
type combo struct{ count, width uint }

// co12Tbl28 applies when the selector occupies the word's low 4 bits
// (28 data bits); co12Tbl32 applies when the selector was carried over
// (32 data bits).
var co12Tbl28 = [12]combo{
	{28, 1}, {14, 2}, {9, 3}, {7, 4}, {5, 5}, {4, 7},
	{3, 9}, {2, 12}, {2, 14}, {1, 18}, {1, 22}, {1, 28},
}

var co12Tbl32 = [12]combo{
	{32, 1}, {16, 2}, {10, 3}, {8, 4}, {6, 5}, {4, 8},
	{3, 10}, {2, 13}, {2, 16}, {1, 20}, {1, 25}, {1, 32},
}

// MaxValue is the largest encodable value (28 bits): a d-gap larger than
// this would imply a posting list spanning more than 256M documents.
const MaxValue = 1<<28 - 1

// Encode appends the carryover-12 encoding of vals to dst. Every value must
// be <= MaxValue.
func (Carryover12) Encode(dst []byte, vals []uint32) []byte {
	var hdr [4]byte
	putU32(hdr[:], uint32(len(vals)))
	dst = append(dst, hdr[:]...)

	carried := false // the previous word has spare bits holding our selector
	carryPos := 0    // byte offset of that word in dst
	carryShift := uint(0)
	i := 0
	for i < len(vals) {
		tbl := &co12Tbl28
		if carried {
			tbl = &co12Tbl32
		}
		sel := chooseCombo(tbl, vals[i:])
		c := tbl[sel]

		var word uint32
		shift := uint(0)
		if carried {
			prev := getU32(dst[carryPos:])
			prev |= uint32(sel) << carryShift
			putU32(dst[carryPos:], prev)
		} else {
			word = uint32(sel) // low 4 bits hold the selector
			shift = 4
		}
		packed := int(c.count)
		if packed > len(vals)-i {
			packed = len(vals) - i
		}
		for k := 0; k < packed; k++ {
			word |= vals[i+k] << shift
			shift += c.width
		}
		i += packed

		pos := len(dst)
		var wb [4]byte
		putU32(wb[:], word)
		dst = append(dst, wb[:]...)

		if 32-shift >= 4 {
			carried = true
			carryPos = pos
			carryShift = shift
		} else {
			carried = false
		}
	}
	return dst
}

// chooseCombo picks the selector packing the most values of the next run;
// ties break toward the first table entry, keeping encode/decode in
// lockstep.
func chooseCombo(tbl *[12]combo, vals []uint32) int {
	best := -1
	bestCount := -1
	for sel, c := range tbl {
		n := int(c.count)
		if n > len(vals) {
			n = len(vals)
		}
		limit := ^uint32(0)
		if c.width < 32 {
			limit = 1<<c.width - 1
		}
		fits := true
		for k := 0; k < n; k++ {
			if vals[k] > limit {
				fits = false
				break
			}
		}
		if fits && n > bestCount {
			best = sel
			bestCount = n
		}
	}
	if best < 0 {
		panic("baseline: carryover-12 value exceeds 28 bits")
	}
	return best
}

// Decode appends exactly n values to dst and returns dst, the input
// remaining after the consumed words, and an error. Decoding fewer than
// the encoded count stops early but still consumes whole words.
func (Carryover12) Decode(dst []uint32, src []byte, n int) ([]uint32, []byte, error) {
	if len(src) < 4 {
		return nil, nil, ErrCorrupt
	}
	total := int(getU32(src))
	if n > total {
		return nil, nil, ErrCorrupt
	}
	src = src[4:]

	carried := false
	carriedSel := 0
	encRem := total // values the encoder still had before the current word
	got := 0
	for got < n {
		if len(src) < 4 {
			return nil, nil, ErrCorrupt
		}
		word := getU32(src)
		src = src[4:]

		var c combo
		shift := uint(0)
		if carried {
			c = co12Tbl32[carriedSel]
		} else {
			c = co12Tbl28[word&0xF]
			shift = 4
		}
		mask := ^uint32(0)
		if c.width < 32 {
			mask = 1<<c.width - 1
		}
		packed := int(c.count)
		if packed > encRem {
			packed = encRem
		}
		take := packed
		if take > n-got {
			take = n - got
		}
		for j := 0; j < take; j++ {
			dst = append(dst, (word>>shift)&mask)
			shift += c.width
		}
		got += take
		encRem -= packed

		// Mirror the encoder's spare-bit decision using its packed count.
		used := shift + c.width*uint(packed-take)
		if 32-used >= 4 && encRem > 0 {
			carried = true
			carriedSel = int((word >> used) & 0xF)
		} else {
			carried = false
		}
	}
	return dst, src, nil
}

package baseline

import "container/heap"

// Huffman is a semi-static canonical Huffman coder over bytes — the "shuff"
// baseline of Table 4, and the stand-in for the slow/high-ratio end of the
// Figure 2 spectrum (bzip2 cannot be produced with the Go standard
// library). "Semi-static" means two passes: one to gather symbol
// frequencies, one to encode; the 256 code lengths travel in the header.
//
// Decoding walks the canonical code table bit by bit, which is exactly why
// entropy coders lose the decompression-bandwidth race in the paper: one
// unpredictable-latency loop iteration per bit versus PFOR's constant
// ~5 cycles per value.
type Huffman struct{}

// Name returns the codec name used in reports.
func (Huffman) Name() string { return "shuff" }

const huffMaxLen = 48 // bitWriter safety bound; real byte data stays far below

// Compress appends the Huffman-compressed form of src to dst.
func (Huffman) Compress(dst, src []byte) []byte {
	var hdr [4]byte
	putU32(hdr[:], uint32(len(src)))
	dst = append(dst, hdr[:]...)

	var freq [256]uint64
	for _, c := range src {
		freq[c]++
	}
	lengths := huffLengths(freq)
	dst = append(dst, lengths[:]...)
	if len(src) == 0 {
		return dst
	}
	codes := canonicalCodes(lengths)

	w := msbWriter{dst: dst}
	for _, c := range src {
		w.write(codes[c], uint(lengths[c]))
	}
	return w.flush()
}

// Decompress appends the original bytes to dst.
func (Huffman) Decompress(dst, src []byte) ([]byte, error) {
	if len(src) < 4+256 {
		return nil, ErrCorrupt
	}
	want := int(getU32(src))
	var lengths [256]byte
	copy(lengths[:], src[4:260])
	src = src[260:]
	if want == 0 {
		return dst, nil
	}

	// Canonical decode tables: for each length, the first code value, the
	// number of codes, and the symbol list sorted by (length, symbol).
	var counts [huffMaxLen + 1]int
	for _, l := range lengths {
		if l > huffMaxLen {
			return nil, ErrCorrupt
		}
		counts[l]++
	}
	counts[0] = 0
	var firstCode [huffMaxLen + 2]uint64
	var offset [huffMaxLen + 2]int
	code := uint64(0)
	total := 0
	for l := 1; l <= huffMaxLen; l++ {
		firstCode[l] = code
		offset[l] = total
		code = (code + uint64(counts[l])) << 1
		total += counts[l]
	}
	syms := make([]byte, total)
	var next [huffMaxLen + 1]int
	for s := 0; s < 256; s++ {
		if l := lengths[s]; l > 0 {
			syms[offset[l]+next[l]] = byte(s)
			next[l]++
		}
	}

	r := msbReader{src: src}
	cur := uint64(0)
	curLen := 0
	for {
		bit, ok := r.readBit()
		if !ok {
			return nil, ErrCorrupt
		}
		cur = cur<<1 | uint64(bit)
		curLen++
		if curLen > huffMaxLen {
			return nil, ErrCorrupt
		}
		if idx := cur - firstCode[curLen]; idx < uint64(counts[curLen]) {
			dst = append(dst, syms[offset[curLen]+int(idx)])
			want--
			if want == 0 {
				return dst, nil
			}
			cur, curLen = 0, 0
		}
	}
}

// huffLengths computes code lengths for the given frequencies, damping
// pathological distributions until the longest code fits huffMaxLen.
func huffLengths(freq [256]uint64) [256]byte {
	for {
		lengths, maxLen := buildLengths(freq)
		if maxLen <= huffMaxLen {
			return lengths
		}
		for i := range freq {
			if freq[i] > 0 {
				freq[i] = freq[i]/2 + 1
			}
		}
	}
}

type huffNode struct {
	freq        uint64
	sym         int // -1 for internal
	left, right int // node indices
}

type huffHeap struct {
	nodes *[]huffNode
	idx   []int
}

func (h huffHeap) Len() int { return len(h.idx) }
func (h huffHeap) Less(i, j int) bool {
	ni, nj := (*h.nodes)[h.idx[i]], (*h.nodes)[h.idx[j]]
	if ni.freq != nj.freq {
		return ni.freq < nj.freq
	}
	return h.idx[i] < h.idx[j] // deterministic tie-break
}
func (h huffHeap) Swap(i, j int) { h.idx[i], h.idx[j] = h.idx[j], h.idx[i] }
func (h *huffHeap) Push(x any)   { h.idx = append(h.idx, x.(int)) }
func (h *huffHeap) Pop() any     { x := h.idx[len(h.idx)-1]; h.idx = h.idx[:len(h.idx)-1]; return x }

func buildLengths(freq [256]uint64) ([256]byte, int) {
	var lengths [256]byte
	nodes := make([]huffNode, 0, 512)
	h := &huffHeap{nodes: &nodes}
	for s, f := range freq {
		if f > 0 {
			nodes = append(nodes, huffNode{freq: f, sym: s, left: -1, right: -1})
			h.idx = append(h.idx, len(nodes)-1)
		}
	}
	if len(h.idx) == 0 {
		return lengths, 0
	}
	if len(h.idx) == 1 {
		lengths[nodes[h.idx[0]].sym] = 1
		return lengths, 1
	}
	heap.Init(h)
	for h.Len() > 1 {
		a := heap.Pop(h).(int)
		b := heap.Pop(h).(int)
		nodes = append(nodes, huffNode{freq: nodes[a].freq + nodes[b].freq, sym: -1, left: a, right: b})
		heap.Push(h, len(nodes)-1)
	}
	root := h.idx[0]
	// Iterative depth assignment.
	maxLen := 0
	type item struct{ node, depth int }
	stack := []item{{root, 0}}
	for len(stack) > 0 {
		it := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		n := nodes[it.node]
		if n.sym >= 0 {
			lengths[n.sym] = byte(it.depth)
			if it.depth > maxLen {
				maxLen = it.depth
			}
			continue
		}
		stack = append(stack, item{n.left, it.depth + 1}, item{n.right, it.depth + 1})
	}
	return lengths, maxLen
}

// canonicalCodes assigns canonical codes from lengths: codes of the same
// length are consecutive, ordered by symbol.
func canonicalCodes(lengths [256]byte) [256]uint64 {
	var counts [huffMaxLen + 1]int
	for _, l := range lengths {
		counts[l]++
	}
	counts[0] = 0
	var nextCode [huffMaxLen + 1]uint64
	code := uint64(0)
	for l := 1; l <= huffMaxLen; l++ {
		nextCode[l] = code
		code = (code + uint64(counts[l])) << 1
	}
	var codes [256]uint64
	for s := 0; s < 256; s++ {
		if l := lengths[s]; l > 0 {
			codes[s] = nextCode[l]
			nextCode[l]++
		}
	}
	return codes
}

// msbWriter writes bit streams most-significant-bit first (the canonical
// Huffman convention).
type msbWriter struct {
	dst  []byte
	acc  uint64
	bits uint
}

func (w *msbWriter) write(v uint64, width uint) {
	w.acc = w.acc<<width | v
	w.bits += width
	for w.bits >= 8 {
		w.dst = append(w.dst, byte(w.acc>>(w.bits-8)))
		w.bits -= 8
	}
}

func (w *msbWriter) flush() []byte {
	if w.bits > 0 {
		w.dst = append(w.dst, byte(w.acc<<(8-w.bits)))
		w.acc, w.bits = 0, 0
	}
	return w.dst
}

type msbReader struct {
	src  []byte
	acc  uint64
	bits uint
}

func (r *msbReader) readBit() (uint64, bool) {
	if r.bits == 0 {
		if len(r.src) == 0 {
			return 0, false
		}
		r.acc = uint64(r.src[0])
		r.src = r.src[1:]
		r.bits = 8
	}
	r.bits--
	return (r.acc >> r.bits) & 1, true
}

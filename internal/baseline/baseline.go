// Package baseline implements the compression schemes the paper compares
// against: the classic database schemes FOR, prefix suppression and plain
// dictionary coding (Section 2.1), the fast byte-stream compressors LZRW1
// and LZW plus DEFLATE (Figure 2), and the inverted-file codecs
// carryover-12, semi-static Huffman ("shuff") and variable-byte (Table 4).
//
// Everything here is implemented from scratch on the Go standard library;
// see DESIGN.md §3 for the mapping from the paper's exact comparators to
// these implementations.
package baseline

import (
	"errors"
	"fmt"

	"repro/internal/bitpack"
)

// ErrCorrupt is returned when a compressed stream fails validation.
var ErrCorrupt = errors.New("baseline: corrupt compressed data")

// ByteCodec compresses opaque byte streams (the granularity at which
// Sybase IQ-style page compressors such as LZRW1 operate).
type ByteCodec interface {
	Name() string
	// Compress appends the compressed form of src to dst.
	Compress(dst, src []byte) []byte
	// Decompress appends the decompressed form of src to dst.
	Decompress(dst, src []byte) ([]byte, error)
}

// IntCodec compresses arrays of small non-negative integers (the
// granularity at which inverted-file codecs operate).
type IntCodec interface {
	Name() string
	// Encode appends the compressed form of vals to dst.
	Encode(dst []byte, vals []uint32) []byte
	// Decode appends exactly n decoded values to dst and returns the
	// remaining input.
	Decode(dst []uint32, src []byte, n int) ([]uint32, []byte, error)
}

// --- FOR: Frame Of Reference (Goldstein et al.) --------------------------

// FORBlock is a plain frame-of-reference compressed block: every value is
// stored as an offset from the block minimum in exactly
// log2(max-min+1) bits. No exceptions — a single outlier inflates the width
// for the whole block, which is precisely the weakness PFOR fixes.
type FORBlock struct {
	Min   int64
	B     uint
	N     int
	Codes []uint32
}

// CompressFOR builds a FOR block from src.
func CompressFOR(src []int64) *FORBlock {
	blk := &FORBlock{N: len(src)}
	if len(src) == 0 {
		return blk
	}
	minV, maxV := src[0], src[0]
	for _, v := range src[1:] {
		if v < minV {
			minV = v
		}
		if v > maxV {
			maxV = v
		}
	}
	blk.Min = minV
	spread := uint64(maxV - minV)
	b := uint(0)
	for spread>>b != 0 {
		b++
	}
	if b > 32 {
		panic(fmt.Sprintf("baseline: FOR spread needs %d bits; split the block", b))
	}
	blk.B = b
	codes := make([]uint32, len(src))
	for i, v := range src {
		codes[i] = uint32(uint64(v - minV))
	}
	blk.Codes = make([]uint32, bitpack.WordCount(len(src), b))
	bitpack.Pack(blk.Codes, codes, b)
	return blk
}

// Decompress expands the block into dst (len >= N).
func (blk *FORBlock) Decompress(dst []int64) []int64 {
	raw := make([]uint32, blk.N)
	bitpack.Unpack(raw, blk.Codes, blk.B)
	for i, c := range raw {
		dst[i] = blk.Min + int64(c)
	}
	return dst[:blk.N]
}

// CompressedBytes returns the block's compressed size.
func (blk *FORBlock) CompressedBytes() int { return 16 + len(blk.Codes)*4 }

// --- PS: Prefix Suppression (Westmann et al.) ----------------------------

// PS implements prefix suppression for 64-bit integers: each value is
// stored as a 4-bit byte-length followed by only its significant bytes
// (zero prefixes suppressed). It is a variable-width encoding, unlike FOR.
type PS struct{}

// Name implements IntCodec-style naming for reports.
func (PS) Name() string { return "PS" }

// Encode appends prefix-suppressed vals to dst.
func (PS) Encode(dst []byte, vals []uint64) []byte {
	// Nibble-packed lengths first (two per byte), then the value bytes.
	lens := make([]byte, (len(vals)+1)/2)
	body := make([]byte, 0, len(vals)*4)
	for i, v := range vals {
		n := byte(0)
		for x := v; x != 0; x >>= 8 {
			n++
		}
		if i%2 == 0 {
			lens[i/2] = n
		} else {
			lens[i/2] |= n << 4
		}
		for k := byte(0); k < n; k++ {
			body = append(body, byte(v>>(8*k)))
		}
	}
	var hdr [4]byte
	putU32(hdr[:], uint32(len(vals)))
	dst = append(dst, hdr[:]...)
	dst = append(dst, lens...)
	return append(dst, body...)
}

// Decode parses an Encode stream, appending the values to dst.
func (PS) Decode(dst []uint64, src []byte) ([]uint64, error) {
	if len(src) < 4 {
		return nil, ErrCorrupt
	}
	n := int(getU32(src))
	src = src[4:]
	lenBytes := (n + 1) / 2
	if len(src) < lenBytes {
		return nil, ErrCorrupt
	}
	lens, body := src[:lenBytes], src[lenBytes:]
	for i := 0; i < n; i++ {
		l := lens[i/2]
		if i%2 == 0 {
			l &= 0x0F
		} else {
			l >>= 4
		}
		if int(l) > len(body) || l > 8 {
			return nil, ErrCorrupt
		}
		var v uint64
		for k := byte(0); k < l; k++ {
			v |= uint64(body[k]) << (8 * k)
		}
		body = body[l:]
		dst = append(dst, v)
	}
	return dst, nil
}

// EncodedBytes returns the exact compressed size Encode would produce.
func (PS) EncodedBytes(vals []uint64) int {
	size := 4 + (len(vals)+1)/2
	for _, v := range vals {
		for x := v; x != 0; x >>= 8 {
			size++
		}
	}
	return size
}

// --- Plain dictionary coding ---------------------------------------------

// DictBlock is Teradata-style whole-column dictionary compression without
// patching: every distinct value must be in the dictionary, so codes need
// log2(|D|) bits even on highly skewed frequency distributions.
type DictBlock struct {
	Dict  []int64
	B     uint
	N     int
	Codes []uint32
}

// CompressDict dictionary-compresses src. It returns an error when src has
// more than 1<<24 distinct values (the paper's maximum code width).
func CompressDict(src []int64) (*DictBlock, error) {
	codeOf := make(map[int64]uint32)
	blk := &DictBlock{N: len(src)}
	codes := make([]uint32, len(src))
	for i, v := range src {
		c, ok := codeOf[v]
		if !ok {
			c = uint32(len(blk.Dict))
			if c >= 1<<24 {
				return nil, errors.New("baseline: too many distinct values for dictionary coding")
			}
			codeOf[v] = c
			blk.Dict = append(blk.Dict, v)
		}
		codes[i] = c
	}
	b := uint(1)
	for len(blk.Dict) > 1<<b {
		b++
	}
	blk.B = b
	blk.Codes = make([]uint32, bitpack.WordCount(len(src), b))
	bitpack.Pack(blk.Codes, codes, b)
	return blk, nil
}

// Decompress expands the block into dst (len >= N).
func (blk *DictBlock) Decompress(dst []int64) []int64 {
	raw := make([]uint32, blk.N)
	bitpack.Unpack(raw, blk.Codes, blk.B)
	for i, c := range raw {
		dst[i] = blk.Dict[c]
	}
	return dst[:blk.N]
}

// CompressedBytes returns the block's compressed size including the
// dictionary.
func (blk *DictBlock) CompressedBytes() int { return 8 + len(blk.Dict)*8 + len(blk.Codes)*4 }

// --- little-endian helpers shared across the package ---------------------

func putU32(b []byte, v uint32) {
	b[0], b[1], b[2], b[3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
}

func getU32(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

package baseline

// VByte is classic variable-byte (v-byte / LEB128) coding: seven payload
// bits per byte, high bit set on the final byte of each value. It is the
// simplest byte-aligned inverted-file codec and a common industry baseline
// (Section 2.1's "variable-bitwidth" family).
type VByte struct{}

// Name returns the codec name used in reports.
func (VByte) Name() string { return "vbyte" }

// Encode appends the variable-byte encoding of vals to dst.
func (VByte) Encode(dst []byte, vals []uint32) []byte {
	var hdr [4]byte
	putU32(hdr[:], uint32(len(vals)))
	dst = append(dst, hdr[:]...)
	for _, v := range vals {
		for v >= 0x80 {
			dst = append(dst, byte(v&0x7F))
			v >>= 7
		}
		dst = append(dst, byte(v)|0x80)
	}
	return dst
}

// Decode appends exactly n values to dst and returns dst, the remaining
// input, and an error.
func (VByte) Decode(dst []uint32, src []byte, n int) ([]uint32, []byte, error) {
	if len(src) < 4 {
		return nil, nil, ErrCorrupt
	}
	total := int(getU32(src))
	if n > total {
		return nil, nil, ErrCorrupt
	}
	src = src[4:]
	for k := 0; k < n; k++ {
		var v uint32
		shift := uint(0)
		for {
			if len(src) == 0 || shift > 28 {
				return nil, nil, ErrCorrupt
			}
			b := src[0]
			src = src[1:]
			v |= uint32(b&0x7F) << shift
			if b&0x80 != 0 {
				break
			}
			shift += 7
		}
		dst = append(dst, v)
	}
	return dst, src, nil
}

// Deltas converts absolute positions to d-gaps in place: the inverted-file
// transformation of Section 5 ("it is therefore effective to compress the
// gaps rather than the term positions"). Positions must be strictly
// increasing; the first gap is taken from zero.
func Deltas(positions []uint32) {
	prev := uint32(0)
	for i, p := range positions {
		positions[i] = p - prev
		prev = p
	}
}

// PrefixSums is the inverse of Deltas: it turns d-gaps back into absolute
// positions in place.
func PrefixSums(gaps []uint32) {
	acc := uint32(0)
	for i, g := range gaps {
		acc += g
		gaps[i] = acc
	}
}

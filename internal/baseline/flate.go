package baseline

import (
	"bytes"
	"compress/flate"
	"io"
)

// Flate wraps the standard library DEFLATE implementation, standing in for
// zlib in the Figure 2 comparison (zlib is DEFLATE with a two-byte header;
// the speed and ratio are the same).
type Flate struct {
	// Level is the flate compression level; 0 means flate.DefaultCompression.
	Level int
}

// Name returns the codec name used in reports.
func (Flate) Name() string { return "zlib(flate)" }

// Compress appends the DEFLATE stream for src to dst.
func (f Flate) Compress(dst, src []byte) []byte {
	level := f.Level
	if level == 0 {
		level = flate.DefaultCompression
	}
	var buf bytes.Buffer
	w, err := flate.NewWriter(&buf, level)
	if err != nil {
		panic(err) // only fails on invalid level
	}
	if _, err := w.Write(src); err != nil {
		panic(err) // bytes.Buffer cannot fail
	}
	if err := w.Close(); err != nil {
		panic(err)
	}
	return append(dst, buf.Bytes()...)
}

// Decompress appends the original bytes to dst.
func (Flate) Decompress(dst, src []byte) ([]byte, error) {
	r := flate.NewReader(bytes.NewReader(src))
	defer r.Close()
	out, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	return append(dst, out...), nil
}

// DecompressLimit is Decompress with an output cap: a stream that would
// expand beyond max bytes returns ErrCorrupt instead of allocating its
// full inflation — the guard a reader needs when the stream comes from an
// untrusted container and the expected size is known from its metadata.
func (Flate) DecompressLimit(dst, src []byte, max int) ([]byte, error) {
	r := flate.NewReader(bytes.NewReader(src))
	defer r.Close()
	out, err := io.ReadAll(io.LimitReader(r, int64(max)+1))
	if err != nil {
		return nil, err
	}
	if len(out) > max {
		return nil, ErrCorrupt
	}
	return append(dst, out...), nil
}

package baseline

// LZRW1 is a from-scratch implementation of Ross Williams' 1991 algorithm:
// a fast Lempel-Ziv variant that uses a direct-mapped hash table without
// collision chains, trading compression ratio for speed. Sybase IQ uses it
// as its fast page compressor (Section 2.1); Figure 2 benchmarks it against
// PFOR.
//
// Stream format (as in the original): groups of up to 16 items, each group
// preceded by a 16-bit control word (LSB first). Control bit 0 = literal
// byte; bit 1 = copy item of two bytes: 12-bit offset (1..4095 back) and
// 4-bit length (3..18).
type LZRW1 struct{}

// Name returns the codec name used in reports.
func (LZRW1) Name() string { return "lzrw1" }

const (
	lzrw1MinMatch = 3
	lzrw1MaxMatch = 18
	lzrw1MaxOff   = 4095
	lzrw1HashBits = 12
)

// Compress appends the LZRW1-compressed form of src to dst.
func (LZRW1) Compress(dst, src []byte) []byte {
	var hdr [4]byte
	putU32(hdr[:], uint32(len(src)))
	dst = append(dst, hdr[:]...)

	var table [1 << lzrw1HashBits]int32
	for i := range table {
		table[i] = -1
	}

	i := 0
	for i < len(src) {
		ctrlPos := len(dst)
		dst = append(dst, 0, 0) // control word placeholder
		var ctrl uint16
		items := 0
		for items < 16 && i < len(src) {
			matched := false
			if i+lzrw1MinMatch <= len(src) {
				h := lzrw1Hash(src[i:])
				cand := table[h]
				table[h] = int32(i)
				if cand >= 0 && i-int(cand) <= lzrw1MaxOff &&
					src[cand] == src[i] && src[cand+1] == src[i+1] && src[cand+2] == src[i+2] {
					length := lzrw1MinMatch
					maxLen := min(lzrw1MaxMatch, len(src)-i)
					for length < maxLen && src[int(cand)+length] == src[i+length] {
						length++
					}
					off := i - int(cand)
					dst = append(dst,
						byte(off), // low 8 offset bits
						byte(off>>8)|byte(length-lzrw1MinMatch)<<4)
					ctrl |= 1 << items
					i += length
					matched = true
				}
			}
			if !matched {
				dst = append(dst, src[i])
				i++
			}
			items++
		}
		dst[ctrlPos] = byte(ctrl)
		dst[ctrlPos+1] = byte(ctrl >> 8)
	}
	return dst
}

// DecompressLimit is Decompress with an output cap: the stream's declared
// length is validated against max before any inflation happens, so a
// crafted length prefix cannot demand an oversized allocation.
func (z LZRW1) DecompressLimit(dst, src []byte, max int) ([]byte, error) {
	if len(src) < 4 {
		return nil, ErrCorrupt
	}
	if int(getU32(src)) > max {
		return nil, ErrCorrupt
	}
	return z.Decompress(dst, src)
}

// Decompress appends the original bytes to dst.
func (LZRW1) Decompress(dst, src []byte) ([]byte, error) {
	if len(src) < 4 {
		return nil, ErrCorrupt
	}
	want := int(getU32(src))
	src = src[4:]
	start := len(dst)
	for len(dst)-start < want {
		if len(src) < 2 {
			return nil, ErrCorrupt
		}
		ctrl := uint16(src[0]) | uint16(src[1])<<8
		src = src[2:]
		for k := 0; k < 16 && len(dst)-start < want; k++ {
			if ctrl&(1<<k) == 0 {
				if len(src) < 1 {
					return nil, ErrCorrupt
				}
				dst = append(dst, src[0])
				src = src[1:]
				continue
			}
			if len(src) < 2 {
				return nil, ErrCorrupt
			}
			off := int(src[0]) | int(src[1]&0x0F)<<8
			length := int(src[1]>>4) + lzrw1MinMatch
			src = src[2:]
			pos := len(dst) - off
			if off == 0 || pos < start {
				return nil, ErrCorrupt
			}
			// Overlapping copies are legal (run-length-like matches).
			for j := 0; j < length; j++ {
				dst = append(dst, dst[pos+j])
			}
		}
	}
	if len(dst)-start != want {
		return nil, ErrCorrupt
	}
	return dst, nil
}

// lzrw1Hash hashes the next three bytes into the table index, following the
// original's multiplicative style.
func lzrw1Hash(p []byte) uint32 {
	v := uint32(p[0]) | uint32(p[1])<<8 | uint32(p[2])<<16
	return (v * 2654435761) >> (32 - lzrw1HashBits)
}

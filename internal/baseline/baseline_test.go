package baseline

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

// --- FOR ------------------------------------------------------------------

func TestFORRoundTrip(t *testing.T) {
	src := []int64{100, 105, 103, 100, 110, 101}
	blk := CompressFOR(src)
	if blk.Min != 100 {
		t.Fatalf("min %d, want 100", blk.Min)
	}
	if blk.B != 4 {
		t.Fatalf("width %d, want 4 (spread 10)", blk.B)
	}
	out := make([]int64, len(src))
	blk.Decompress(out)
	for i := range src {
		if out[i] != src[i] {
			t.Fatalf("mismatch at %d", i)
		}
	}
}

func TestFOREmptyAndConstant(t *testing.T) {
	blk := CompressFOR(nil)
	if blk.N != 0 {
		t.Fatal("empty block")
	}
	src := []int64{7, 7, 7, 7}
	blk = CompressFOR(src)
	if blk.B != 0 {
		t.Fatalf("constant column needs 0 bits, got %d", blk.B)
	}
	out := make([]int64, 4)
	blk.Decompress(out)
	for i := range src {
		if out[i] != 7 {
			t.Fatal("constant decode")
		}
	}
}

func TestFORVulnerableToOutliers(t *testing.T) {
	// The motivating weakness: one outlier inflates every code.
	tight := make([]int64, 1000)
	for i := range tight {
		tight[i] = int64(i % 16)
	}
	blkTight := CompressFOR(tight)
	withOutlier := append(append([]int64{}, tight...), 1<<30)
	blkOut := CompressFOR(withOutlier)
	if blkOut.CompressedBytes() < 5*blkTight.CompressedBytes() {
		t.Fatalf("one outlier should blow up FOR: %d vs %d bytes",
			blkOut.CompressedBytes(), blkTight.CompressedBytes())
	}
}

// --- PS ---------------------------------------------------------------------

func TestPSRoundTrip(t *testing.T) {
	vals := []uint64{0, 1, 255, 256, 65535, 1 << 40, ^uint64(0)}
	enc := PS{}.Encode(nil, vals)
	if want := (PS{}).EncodedBytes(vals); len(enc) != want {
		t.Fatalf("EncodedBytes %d != actual %d", want, len(enc))
	}
	out, err := PS{}.Decode(nil, enc)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(vals) {
		t.Fatalf("got %d values", len(out))
	}
	for i := range vals {
		if out[i] != vals[i] {
			t.Fatalf("mismatch at %d: %d != %d", i, out[i], vals[i])
		}
	}
}

func TestPSCompressesSmallValues(t *testing.T) {
	vals := make([]uint64, 10_000)
	for i := range vals {
		vals[i] = uint64(i % 200) // one byte each
	}
	enc := PS{}.Encode(nil, vals)
	// ~1 byte payload + 0.5 byte length per value.
	if len(enc) > len(vals)*2 {
		t.Fatalf("PS on 1-byte values took %d bytes for %d values", len(enc), len(vals))
	}
}

func TestPSQuick(t *testing.T) {
	f := func(vals []uint64) bool {
		enc := PS{}.Encode(nil, vals)
		out, err := PS{}.Decode(nil, enc)
		if err != nil || len(out) != len(vals) {
			return false
		}
		for i := range vals {
			if out[i] != vals[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// --- Dict -------------------------------------------------------------------

func TestDictRoundTrip(t *testing.T) {
	src := []int64{5, 9, 5, 5, 9, 12, 5}
	blk, err := CompressDict(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(blk.Dict) != 3 {
		t.Fatalf("dict size %d, want 3", len(blk.Dict))
	}
	out := make([]int64, len(src))
	blk.Decompress(out)
	for i := range src {
		if out[i] != src[i] {
			t.Fatalf("mismatch at %d", i)
		}
	}
}

// --- byte codecs ------------------------------------------------------------

func byteCodecs() []ByteCodec {
	return []ByteCodec{LZRW1{}, LZW{}, Huffman{}, Flate{}}
}

func testInputs(rng *rand.Rand) map[string][]byte {
	repetitive := bytes.Repeat([]byte("the quick brown fox jumps over the lazy dog. "), 200)
	random := make([]byte, 8192)
	rng.Read(random)
	skewed := make([]byte, 16384)
	for i := range skewed {
		if rng.Intn(10) == 0 {
			skewed[i] = byte(rng.Intn(256))
		} else {
			skewed[i] = byte(rng.Intn(4))
		}
	}
	runs := make([]byte, 4096)
	for i := range runs {
		runs[i] = byte(i / 100)
	}
	return map[string][]byte{
		"empty":      {},
		"single":     {42},
		"repetitive": repetitive,
		"random":     random,
		"skewed":     skewed,
		"runs":       runs,
	}
}

func TestByteCodecsRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for name, input := range testInputs(rng) {
		for _, codec := range byteCodecs() {
			enc := codec.Compress(nil, input)
			dec, err := codec.Decompress(nil, enc)
			if err != nil {
				t.Fatalf("%s/%s: %v", codec.Name(), name, err)
			}
			if !bytes.Equal(dec, input) {
				t.Fatalf("%s/%s: round-trip mismatch (%d vs %d bytes)", codec.Name(), name, len(dec), len(input))
			}
		}
	}
}

func TestByteCodecsAppendSemantics(t *testing.T) {
	// Compress/Decompress must append, not clobber.
	prefix := []byte("prefix")
	input := bytes.Repeat([]byte("ab"), 500)
	for _, codec := range byteCodecs() {
		enc := codec.Compress(append([]byte{}, prefix...), input)
		if !bytes.HasPrefix(enc, prefix) {
			t.Fatalf("%s: Compress clobbered dst", codec.Name())
		}
		dec, err := codec.Decompress(append([]byte{}, prefix...), enc[len(prefix):])
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.HasPrefix(dec, prefix) || !bytes.Equal(dec[len(prefix):], input) {
			t.Fatalf("%s: Decompress clobbered dst", codec.Name())
		}
	}
}

func TestByteCodecsCompressCompressible(t *testing.T) {
	input := bytes.Repeat([]byte("aaaabbbbccccdddd"), 1000)
	for _, codec := range byteCodecs() {
		enc := codec.Compress(nil, input)
		if len(enc) >= len(input) {
			t.Errorf("%s: repetitive input grew: %d -> %d", codec.Name(), len(input), len(enc))
		}
	}
}

func TestByteCodecsRejectCorrupt(t *testing.T) {
	input := bytes.Repeat([]byte("hello world "), 100)
	for _, codec := range byteCodecs() {
		enc := codec.Compress(nil, input)
		if _, err := codec.Decompress(nil, enc[:3]); err == nil {
			t.Errorf("%s: truncated stream accepted", codec.Name())
		}
	}
}

func TestByteCodecsQuick(t *testing.T) {
	for _, codec := range byteCodecs() {
		codec := codec
		f := func(input []byte) bool {
			enc := codec.Compress(nil, input)
			dec, err := codec.Decompress(nil, enc)
			return err == nil && bytes.Equal(dec, input)
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
			t.Errorf("%s: %v", codec.Name(), err)
		}
	}
}

func TestLZRW1FindsMatches(t *testing.T) {
	// A long literal repeat must compress well below 50%.
	input := bytes.Repeat([]byte("abcdefgh"), 512)
	enc := LZRW1{}.Compress(nil, input)
	if len(enc) > len(input)/3 {
		t.Fatalf("lzrw1 on periodic input: %d -> %d", len(input), len(enc))
	}
}

func TestHuffmanApproachesEntropy(t *testing.T) {
	// Two symbols, 50/50: ~1 bit each, so ~8x compression.
	rng := rand.New(rand.NewSource(62))
	input := make([]byte, 32768)
	for i := range input {
		input[i] = byte(rng.Intn(2))
	}
	enc := Huffman{}.Compress(nil, input)
	if len(enc) > len(input)/6 {
		t.Fatalf("huffman on 1-bit-entropy bytes: %d -> %d", len(input), len(enc))
	}
}

// --- int codecs ---------------------------------------------------------

func intCodecs() []IntCodec {
	return []IntCodec{Carryover12{}, VByte{}}
}

func gapData(rng *rand.Rand, n int, maxGap uint32) []uint32 {
	vals := make([]uint32, n)
	for i := range vals {
		vals[i] = rng.Uint32() % maxGap
	}
	return vals
}

func TestIntCodecsRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(63))
	inputs := map[string][]uint32{
		"empty":      {},
		"single":     {12345},
		"ones":       bytesOfOnes(5000),
		"small gaps": gapData(rng, 10_000, 16),
		"mixed gaps": gapData(rng, 10_000, 1<<20),
		"max":        {MaxValue, 0, MaxValue, 1, MaxValue},
	}
	for name, input := range inputs {
		for _, codec := range intCodecs() {
			enc := codec.Encode(nil, input)
			dec, rest, err := codec.Decode(nil, enc, len(input))
			if err != nil {
				t.Fatalf("%s/%s: %v", codec.Name(), name, err)
			}
			if len(dec) != len(input) {
				t.Fatalf("%s/%s: %d values", codec.Name(), name, len(dec))
			}
			for i := range input {
				if dec[i] != input[i] {
					t.Fatalf("%s/%s: mismatch at %d: %d != %d", codec.Name(), name, i, dec[i], input[i])
				}
			}
			_ = rest
		}
	}
}

func bytesOfOnes(n int) []uint32 {
	v := make([]uint32, n)
	for i := range v {
		v[i] = 1
	}
	return v
}

func TestIntCodecsPartialDecode(t *testing.T) {
	rng := rand.New(rand.NewSource(64))
	input := gapData(rng, 1000, 1<<12)
	for _, codec := range intCodecs() {
		enc := codec.Encode(nil, input)
		for _, n := range []int{0, 1, 13, 500, 999} {
			dec, _, err := codec.Decode(nil, enc, n)
			if err != nil {
				t.Fatalf("%s: partial %d: %v", codec.Name(), n, err)
			}
			for i := 0; i < n; i++ {
				if dec[i] != input[i] {
					t.Fatalf("%s: partial %d mismatch at %d", codec.Name(), n, i)
				}
			}
		}
		if _, _, err := codec.Decode(nil, enc, 1001); err == nil {
			t.Fatalf("%s: decoding more than encoded must fail", codec.Name())
		}
	}
}

func TestCarryover12Density(t *testing.T) {
	// 1-bit values should pack ~28-32 per word: < 1.3 bits/value.
	input := bytesOfOnes(28_000)
	enc := Carryover12{}.Encode(nil, input)
	bitsPerVal := float64(len(enc)-4) * 8 / float64(len(input))
	if bitsPerVal > 1.3 {
		t.Fatalf("carryover-12 on 1-bit values: %.2f bits/value", bitsPerVal)
	}
}

func TestCarryover12BeatsVByteOnSmallGaps(t *testing.T) {
	rng := rand.New(rand.NewSource(65))
	input := gapData(rng, 50_000, 8)
	co := Carryover12{}.Encode(nil, input)
	vb := VByte{}.Encode(nil, input)
	if len(co) >= len(vb) {
		t.Fatalf("carryover-12 (%d B) should beat vbyte (%d B) on 3-bit gaps", len(co), len(vb))
	}
}

func TestCarryover12RejectsOversized(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for value > 28 bits")
		}
	}()
	Carryover12{}.Encode(nil, []uint32{1 << 29})
}

func TestIntCodecsQuick(t *testing.T) {
	for _, codec := range intCodecs() {
		codec := codec
		f := func(raw []uint32) bool {
			vals := make([]uint32, len(raw))
			for i, v := range raw {
				vals[i] = v & MaxValue
			}
			enc := codec.Encode(nil, vals)
			dec, _, err := codec.Decode(nil, enc, len(vals))
			if err != nil || len(dec) != len(vals) {
				return false
			}
			for i := range vals {
				if dec[i] != vals[i] {
					return false
				}
			}
			return true
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
			t.Errorf("%s: %v", codec.Name(), err)
		}
	}
}

// --- delta helpers --------------------------------------------------------

func TestDeltasPrefixSums(t *testing.T) {
	positions := []uint32{3, 7, 8, 20, 21}
	gaps := append([]uint32{}, positions...)
	Deltas(gaps)
	want := []uint32{3, 4, 1, 12, 1}
	for i := range want {
		if gaps[i] != want[i] {
			t.Fatalf("gap %d = %d, want %d", i, gaps[i], want[i])
		}
	}
	PrefixSums(gaps)
	for i := range positions {
		if gaps[i] != positions[i] {
			t.Fatalf("inverse failed at %d", i)
		}
	}
}

package baseline

import "sort"

// GapHuffman is a semi-static canonical Huffman coder over d-gap *values*
// (not bytes): the form of "shuff" used for inverted files. Small gaps
// (< 256) are direct symbols, so the coder approaches the entropy of the
// dense head; larger gaps map to a bit-length bucket symbol followed by
// the gap's raw low bits (Huffman-coded Elias-gamma, the standard
// large-alphabet trick). Two passes (count, encode) make it semi-static;
// the code lengths travel in the header.
type GapHuffman struct{}

// Name returns the codec name used in reports (Table 4's "shuff").
func (GapHuffman) Name() string { return "shuff" }

const (
	gapHuffDirect  = 256 // direct symbols 0..255
	gapHuffBuckets = 24  // bit lengths 9..32
	gapHuffSymbols = gapHuffDirect + gapHuffBuckets
)

// gapSym maps a gap to its symbol and the count of raw low bits to emit.
func gapSym(v uint32) (sym int, rawBits uint) {
	if v < gapHuffDirect {
		return int(v), 0
	}
	bl := bitsLen32(v) // 9..32
	return gapHuffDirect + bl - 9, uint(bl - 1)
}

func bitsLen32(v uint32) int {
	n := 0
	for v != 0 {
		v >>= 1
		n++
	}
	return n
}

// Encode appends the Huffman encoding of vals to dst.
func (GapHuffman) Encode(dst []byte, vals []uint32) []byte {
	var hdr [4]byte
	putU32(hdr[:], uint32(len(vals)))
	dst = append(dst, hdr[:]...)

	freq := make([]uint64, gapHuffSymbols)
	for _, v := range vals {
		sym, _ := gapSym(v)
		freq[sym]++
	}
	lengths := gapHuffLengths(freq)
	// Header: one length byte per symbol, amortized over block-sized gap
	// streams.
	dst = append(dst, lengths...)
	if len(vals) == 0 {
		return dst
	}
	codes := gapCanonicalCodes(lengths)

	w := msbWriter{dst: dst}
	for _, v := range vals {
		sym, rawBits := gapSym(v)
		w.write(codes[sym], uint(lengths[sym]))
		if rawBits > 0 {
			// Low bits only; the top bit is implied by the bucket.
			w.write(uint64(v)&(1<<rawBits-1), rawBits)
		}
	}
	return w.flush()
}

// Decode appends exactly n values to dst and returns dst, the rest of the
// input (always empty — the stream is consumed), and an error.
func (GapHuffman) Decode(dst []uint32, src []byte, n int) ([]uint32, []byte, error) {
	if len(src) < 4+gapHuffSymbols {
		return nil, nil, ErrCorrupt
	}
	total := int(getU32(src))
	if n > total {
		return nil, nil, ErrCorrupt
	}
	lengths := src[4 : 4+gapHuffSymbols]
	src = src[4+gapHuffSymbols:]

	var counts [huffMaxLen + 1]int
	for _, l := range lengths {
		if l > huffMaxLen {
			return nil, nil, ErrCorrupt
		}
		counts[l]++
	}
	counts[0] = 0
	var firstCode [huffMaxLen + 2]uint64
	var offset [huffMaxLen + 2]int
	code := uint64(0)
	totalSyms := 0
	for l := 1; l <= huffMaxLen; l++ {
		firstCode[l] = code
		offset[l] = totalSyms
		code = (code + uint64(counts[l])) << 1
		totalSyms += counts[l]
	}
	syms := make([]uint32, totalSyms)
	next := make([]int, huffMaxLen+1)
	for s := 0; s < gapHuffSymbols; s++ {
		if l := lengths[s]; l > 0 {
			syms[offset[l]+next[l]] = uint32(s)
			next[l]++
		}
	}

	r := msbReader{src: src}
	cur := uint64(0)
	curLen := 0
	for n > 0 {
		bit, ok := r.readBit()
		if !ok {
			return nil, nil, ErrCorrupt
		}
		cur = cur<<1 | bit
		curLen++
		if curLen > huffMaxLen {
			return nil, nil, ErrCorrupt
		}
		idx := cur - firstCode[curLen]
		if idx >= uint64(counts[curLen]) {
			continue
		}
		sym := syms[offset[curLen]+int(idx)]
		if sym < gapHuffDirect {
			dst = append(dst, sym)
		} else {
			rawBits := int(sym) - gapHuffDirect + 8 // bl-1 where bl = sym-256+9
			var raw uint64
			for k := 0; k < rawBits; k++ {
				b, ok := r.readBit()
				if !ok {
					return nil, nil, ErrCorrupt
				}
				raw = raw<<1 | b
			}
			dst = append(dst, uint32(raw)|1<<rawBits)
		}
		cur, curLen = 0, 0
		n--
	}
	return dst, nil, nil
}

// gapHuffLengths computes code lengths over the gap alphabet, damping until
// the longest code fits huffMaxLen.
func gapHuffLengths(freq []uint64) []byte {
	f := append([]uint64(nil), freq...)
	for {
		lengths, maxLen := buildLengthsN(f)
		if maxLen <= huffMaxLen {
			return lengths
		}
		for i := range f {
			if f[i] > 0 {
				f[i] = f[i]/2 + 1
			}
		}
	}
}

// buildLengthsN is buildLengths for an arbitrary alphabet size, using a
// sorted two-queue construction (O(n log n)) instead of a heap.
func buildLengthsN(freq []uint64) ([]byte, int) {
	type node struct {
		freq        uint64
		sym         int
		left, right int
	}
	var leaves []node
	for s, f := range freq {
		if f > 0 {
			leaves = append(leaves, node{freq: f, sym: s, left: -1, right: -1})
		}
	}
	lengths := make([]byte, len(freq))
	if len(leaves) == 0 {
		return lengths, 0
	}
	if len(leaves) == 1 {
		lengths[leaves[0].sym] = 1
		return lengths, 1
	}
	sort.Slice(leaves, func(i, j int) bool { return leaves[i].freq < leaves[j].freq })

	// Two-queue Huffman: leaves queue (sorted) + internal-node queue
	// (produced in nondecreasing order).
	nodes := append([]node(nil), leaves...)
	internal := make([]int, 0, len(leaves))
	li, ii := 0, 0
	pop := func() int {
		if li < len(leaves) && (ii >= len(internal) || nodes[li].freq <= nodes[internal[ii]].freq) {
			li++
			return li - 1
		}
		ii++
		return internal[ii-1]
	}
	remaining := len(leaves)
	for remaining > 1 {
		a := pop()
		b := pop()
		nodes = append(nodes, node{freq: nodes[a].freq + nodes[b].freq, sym: -1, left: a, right: b})
		internal = append(internal, len(nodes)-1)
		remaining--
	}
	root := internal[len(internal)-1]

	maxLen := 0
	type item struct{ n, d int }
	stack := []item{{root, 0}}
	for len(stack) > 0 {
		it := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		nd := nodes[it.n]
		if nd.sym >= 0 {
			lengths[nd.sym] = byte(it.d)
			if it.d > maxLen {
				maxLen = it.d
			}
			continue
		}
		stack = append(stack, item{nd.left, it.d + 1}, item{nd.right, it.d + 1})
	}
	return lengths, maxLen
}

// gapCanonicalCodes assigns canonical codes for the gap alphabet.
func gapCanonicalCodes(lengths []byte) []uint64 {
	var counts [huffMaxLen + 1]int
	for _, l := range lengths {
		counts[l]++
	}
	counts[0] = 0
	var nextCode [huffMaxLen + 1]uint64
	code := uint64(0)
	for l := 1; l <= huffMaxLen; l++ {
		nextCode[l] = code
		code = (code + uint64(counts[l])) << 1
	}
	codes := make([]uint64, len(lengths))
	for s := range lengths {
		if l := lengths[s]; l > 0 {
			codes[s] = nextCode[l]
			nextCode[l]++
		}
	}
	return codes
}

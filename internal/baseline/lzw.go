package baseline

// LZW is a from-scratch implementation of Welch's 1984 algorithm with
// variable-width codes (9 to lzwMaxBits bits) and dictionary reset on
// overflow — the "common LZW Lempel-Ziv compression" LZRW1 is a fast
// version of (Section 2.1). It stands in for the generic dictionary
// compressors (lzop and friends) in the Figure 2 comparison.
type LZW struct{}

// Name returns the codec name used in reports.
func (LZW) Name() string { return "lzw" }

const (
	lzwMaxBits = 14
	lzwMaxCode = 1<<lzwMaxBits - 1
	lzwClear   = 256 // emitted before every dictionary reset
	lzwFirst   = 257
)

// Compress appends the LZW-compressed form of src to dst.
func (LZW) Compress(dst, src []byte) []byte {
	var hdr [4]byte
	putU32(hdr[:], uint32(len(src)))
	dst = append(dst, hdr[:]...)
	if len(src) == 0 {
		return dst
	}

	bw := bitWriter{dst: dst}
	// prefix table: key = prefixCode<<8 | nextByte.
	table := make(map[uint32]uint32, 4096)
	next := uint32(lzwFirst)
	width := uint(9)

	cur := uint32(src[0])
	for _, c := range src[1:] {
		key := cur<<8 | uint32(c)
		if code, ok := table[key]; ok {
			cur = code
			continue
		}
		bw.write(cur, width)
		table[key] = next
		next++
		if next > 1<<width && width < lzwMaxBits {
			width++
		}
		if next >= lzwMaxCode {
			bw.write(lzwClear, width)
			table = make(map[uint32]uint32, 4096)
			next = lzwFirst
			width = 9
		}
		cur = uint32(c)
	}
	bw.write(cur, width)
	return bw.flush()
}

// DecompressLimit is Decompress with an output cap: the stream's declared
// length is validated against max before any inflation happens, so a
// crafted length prefix cannot demand an oversized allocation.
func (z LZW) DecompressLimit(dst, src []byte, max int) ([]byte, error) {
	if len(src) < 4 {
		return nil, ErrCorrupt
	}
	if int(getU32(src)) > max {
		return nil, ErrCorrupt
	}
	return z.Decompress(dst, src)
}

// Decompress appends the original bytes to dst.
func (LZW) Decompress(dst, src []byte) ([]byte, error) {
	if len(src) < 4 {
		return nil, ErrCorrupt
	}
	want := int(getU32(src))
	src = src[4:]
	if want == 0 {
		return dst, nil
	}
	start := len(dst)

	br := bitReader{src: src}
	// entries[i] = (offset, length) into dst of the string for code i;
	// single bytes are implicit.
	type entry struct{ off, len int32 }
	entries := make([]entry, lzwFirst, lzwMaxCode+1)
	width := uint(9)

	emit := func(code uint32) (int32, int32, error) {
		if code < 256 {
			dst = append(dst, byte(code))
			return int32(len(dst) - 1), 1, nil
		}
		if int(code) >= len(entries) {
			return 0, 0, ErrCorrupt
		}
		e := entries[code]
		off := int32(len(dst))
		for j := int32(0); j < e.len; j++ {
			dst = append(dst, dst[e.off+j])
		}
		return off, e.len, nil
	}

	prevOff, prevLen := int32(-1), int32(0)
	for len(dst)-start < want {
		code, ok := br.read(width)
		if !ok {
			return nil, ErrCorrupt
		}
		if code == lzwClear {
			entries = entries[:lzwFirst]
			width = 9
			prevOff = -1
			continue
		}
		if prevOff < 0 {
			off, n, err := emit(code)
			if err != nil {
				return nil, err
			}
			prevOff, prevLen = off, n
		} else {
			var off, n int32
			var err error
			if int(code) == len(entries) && code >= lzwFirst {
				// The KwKwK case: the new entry is prev + prev[0].
				off = int32(len(dst))
				for j := int32(0); j < prevLen; j++ {
					dst = append(dst, dst[prevOff+j])
				}
				dst = append(dst, dst[prevOff])
				n = prevLen + 1
			} else {
				off, n, err = emit(code)
				if err != nil {
					return nil, err
				}
			}
			entries = append(entries, entry{prevOff, prevLen + 1})
			prevOff, prevLen = off, n
		}
		// The decoder's table lags the encoder's by one entry (the entry
		// for the code just read is completed only by the *next* code), so
		// the width bump fires one entry earlier than the encoder's
		// `next > 1<<width` test.
		if len(entries)+1 > 1<<width && width < lzwMaxBits {
			width++
		}
	}
	if len(dst)-start != want {
		return nil, ErrCorrupt
	}
	return dst, nil
}

// bitWriter writes little-endian bit streams (low bits first).
type bitWriter struct {
	dst  []byte
	acc  uint64
	bits uint
}

func (w *bitWriter) write(v uint32, width uint) {
	w.acc |= uint64(v) << w.bits
	w.bits += width
	for w.bits >= 8 {
		w.dst = append(w.dst, byte(w.acc))
		w.acc >>= 8
		w.bits -= 8
	}
}

func (w *bitWriter) flush() []byte {
	if w.bits > 0 {
		w.dst = append(w.dst, byte(w.acc))
		w.acc, w.bits = 0, 0
	}
	return w.dst
}

// bitReader reads little-endian bit streams.
type bitReader struct {
	src  []byte
	acc  uint64
	bits uint
}

func (r *bitReader) read(width uint) (uint32, bool) {
	for r.bits < width {
		if len(r.src) == 0 {
			return 0, false
		}
		r.acc |= uint64(r.src[0]) << r.bits
		r.src = r.src[1:]
		r.bits += 8
	}
	v := uint32(r.acc) & (1<<width - 1)
	r.acc >>= width
	r.bits -= width
	return v, true
}

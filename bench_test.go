// Benchmarks, one family per table/figure of the paper's evaluation.
// Regenerate everything with:
//
//	go test -bench=. -benchmem
//
// The cmd/ harnesses print the corresponding tables/series; these benches
// expose the same kernels to `go test -bench` tooling. Bandwidth claims are
// reported via b.SetBytes, so the MB/s column is directly comparable to the
// paper's numbers.
package repro

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/experiments"
	"repro/internal/baseline"
	"repro/internal/columnbm"
	"repro/internal/core"
	"repro/internal/invfile"
	"repro/internal/tpch"
)

// --- Figure 2: compression algorithms on TPC-H columns --------------------

func BenchmarkFig2(b *testing.B) {
	ds := tpch.Generate(0.01, 1)
	li := ds.Rel(tpch.Lineitem)
	codecs := []baseline.ByteCodec{baseline.Flate{}, baseline.Huffman{}, baseline.LZRW1{}, baseline.LZW{}}

	for _, col := range []string{"l_orderkey", "l_linenumber", "l_commitdate", "l_extendedprice"} {
		vals := li.Column(col)
		raw := make([]byte, 8*len(vals))
		for i, v := range vals {
			u := uint64(v)
			for k := 0; k < 8; k++ {
				raw[8*i+k] = byte(u >> (8 * k))
			}
		}
		for _, codec := range codecs {
			enc := codec.Compress(nil, raw)
			b.Run(fmt.Sprintf("%s/%s/compress", col, codec.Name()), func(b *testing.B) {
				b.SetBytes(int64(len(raw)))
				for i := 0; i < b.N; i++ {
					codec.Compress(enc[:0], raw)
				}
			})
			dec, _ := codec.Decompress(nil, enc)
			b.Run(fmt.Sprintf("%s/%s/decompress", col, codec.Name()), func(b *testing.B) {
				b.SetBytes(int64(len(raw)))
				for i := 0; i < b.N; i++ {
					if _, err := codec.Decompress(dec[:0], enc); err != nil {
						b.Fatal(err)
					}
				}
			})
		}

		choice := core.Choose(core.Sample(vals, core.DefaultSampleSize))
		if choice.Scheme == core.SchemeNone {
			choice = core.AnalyzePFOR(vals)
		}
		blk := choice.Compress(vals)
		b.Run(fmt.Sprintf("%s/%s/compress", col, choice.Scheme), func(b *testing.B) {
			b.SetBytes(int64(len(raw)))
			for i := 0; i < b.N; i++ {
				choice.Compress(vals)
			}
		})
		out := make([]int64, len(vals))
		var d core.Decoder[int64]
		b.Run(fmt.Sprintf("%s/%s/decompress", col, choice.Scheme), func(b *testing.B) {
			b.SetBytes(int64(len(raw)))
			for i := 0; i < b.N; i++ {
				d.Decompress(blk, out)
			}
		})
	}
}

// --- Figure 4: decompression bandwidth vs exception rate -------------------

func BenchmarkFig4Decompress(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	const n = 1 << 20
	raw := make([]uint32, n)
	out := make([]int64, n)
	var d core.Decoder[int64]

	for _, rate := range []float64{0, 0.1, 0.3, 0.5, 1.0} {
		vals := experiments.SynthPFOR(rng, n, 8, rate)
		nb := core.CompressNaive(vals, 0, 8)
		pb := core.CompressPFOR(vals, 0, 8)
		dvals, dict := experiments.SynthDict(rng, n, 8, rate)
		db := core.CompressPDict(dvals, dict, 8)

		b.Run(fmt.Sprintf("NAIVE/exc=%.1f", rate), func(b *testing.B) {
			b.SetBytes(8 * n)
			for i := 0; i < b.N; i++ {
				nb.Decompress(raw, out)
			}
		})
		b.Run(fmt.Sprintf("PFOR/exc=%.1f", rate), func(b *testing.B) {
			b.SetBytes(8 * n)
			for i := 0; i < b.N; i++ {
				d.Decompress(pb, out)
			}
		})
		b.Run(fmt.Sprintf("PDICT/exc=%.1f", rate), func(b *testing.B) {
			b.SetBytes(8 * n)
			for i := 0; i < b.N; i++ {
				d.Decompress(db, out)
			}
		})
	}
}

// --- Figure 5: compression bandwidth: NAIVE vs PRED vs DC ------------------

func BenchmarkFig5Compress(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	const n = 1 << 20
	for _, rate := range []float64{0, 0.1, 0.3, 0.5} {
		vals := experiments.SynthPFOR(rng, n, 8, rate)
		for name, f := range map[string]func([]int64, int64, uint) *core.Block[int64]{
			"NAIVE": core.CompressPFORNaive[int64],
			"PRED":  core.CompressPFORPred[int64],
			"DC":    core.CompressPFOR[int64],
		} {
			b.Run(fmt.Sprintf("%s/exc=%.1f", name, rate), func(b *testing.B) {
				b.SetBytes(8 * n)
				for i := 0; i < b.N; i++ {
					f(vals, 0, 8)
				}
			})
		}
	}
}

// --- Figure 6: small-width compression with compulsory exceptions ----------

func BenchmarkFig6CompulsoryExceptions(b *testing.B) {
	rng := rand.New(rand.NewSource(6))
	const n = 1 << 20
	for _, width := range []uint{1, 2, 3, 4} {
		vals := experiments.SynthPFOR(rng, n, width, 0.05)
		b.Run(fmt.Sprintf("b=%d", width), func(b *testing.B) {
			b.SetBytes(8 * n)
			for i := 0; i < b.N; i++ {
				core.CompressPFOR(vals, 0, width)
			}
		})
	}
}

// --- Figure 7: page-wise vs vector-wise decompression ----------------------

func BenchmarkFig7(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	const pageValues = 1 << 21
	const vector = 8192
	vals := experiments.SynthPFOR(rng, pageValues, 8, 0.05)
	var blocks []*core.Block[int64]
	for lo := 0; lo < pageValues; lo += vector {
		blocks = append(blocks, core.CompressPFOR(vals[lo:lo+vector], 0, 8))
	}
	pageOut := make([]int64, pageValues)
	vecOut := make([]int64, vector)
	var d core.Decoder[int64]
	sink := int64(0)

	b.Run("page-wise", func(b *testing.B) {
		b.SetBytes(8 * pageValues)
		for i := 0; i < b.N; i++ {
			for k, blk := range blocks {
				d.Decompress(blk, pageOut[k*vector:k*vector+blk.N])
			}
			for _, v := range pageOut {
				sink += v
			}
		}
	})
	b.Run("vector-wise", func(b *testing.B) {
		b.SetBytes(8 * pageValues)
		for i := 0; i < b.N; i++ {
			for _, blk := range blocks {
				d.Decompress(blk, vecOut[:blk.N])
				for _, v := range vecOut[:blk.N] {
					sink += v
				}
			}
		}
	})
	_ = sink
}

// --- Table 2: TPC-H queries on compressed vs uncompressed DSM --------------

func BenchmarkTable2Queries(b *testing.B) {
	compressed := experiments.BuildTPCH(0.01, columnbm.DSM, true, experiments.LowEndRAID)
	uncompressed := experiments.BuildTPCH(0.01, columnbm.DSM, false, experiments.LowEndRAID)
	for _, q := range tpch.QueryOrder {
		b.Run("Q"+q+"/compressed", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				compressed.RunQuery(q, 1<<30, columnbm.VectorWise)
			}
		})
		b.Run("Q"+q+"/uncompressed", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				uncompressed.RunQuery(q, 1<<30, columnbm.VectorWise)
			}
		})
	}
}

// --- Table 3: page-wise vs vector-wise on Q3/4/6/18 -------------------------

func BenchmarkTable3Modes(b *testing.B) {
	cfg := experiments.BuildTPCH(0.01, columnbm.DSM, true, experiments.MidEndRAID)
	for _, q := range []string{"03", "04", "06", "18"} {
		for _, mode := range []columnbm.DecompressMode{columnbm.PageWise, columnbm.VectorWise} {
			b.Run("Q"+q+"/"+mode.String(), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					cfg.RunQuery(q, 1<<30, mode)
				}
			})
		}
	}
}

// --- Table 4: inverted-file codecs ------------------------------------------

func BenchmarkTable4(b *testing.B) {
	p := invfile.Profiles[1] // TREC fbis
	p.Postings = 300_000
	c := invfile.Synthesize(p, 6)
	gaps := c.AllGaps()
	unc := int64(c.UncompressedBytes())

	stream := invfile.Stream(c)
	choices := invfile.AnalyzeBlocks(stream, 1<<16)
	blocks, _ := invfile.CompressStream(stream, choices, 1<<16)
	out := make([]uint32, c.TotalPostings())

	b.Run("PFOR-DELTA/compress", func(b *testing.B) {
		b.SetBytes(unc)
		for i := 0; i < b.N; i++ {
			invfile.CompressStream(stream, choices, 1<<16)
		}
	})
	b.Run("PFOR-DELTA/decompress", func(b *testing.B) {
		b.SetBytes(unc)
		for i := 0; i < b.N; i++ {
			invfile.DecompressPFORDelta(blocks, out)
		}
	})

	for _, codec := range []baseline.IntCodec{baseline.Carryover12{}, baseline.GapHuffman{}, baseline.VByte{}} {
		enc := codec.Encode(nil, gaps)
		gout := make([]uint32, 0, len(gaps))
		b.Run(codec.Name()+"/compress", func(b *testing.B) {
			b.SetBytes(unc)
			for i := 0; i < b.N; i++ {
				codec.Encode(enc[:0], gaps)
			}
		})
		b.Run(codec.Name()+"/decompress", func(b *testing.B) {
			b.SetBytes(unc)
			for i := 0; i < b.N; i++ {
				if _, _, err := codec.Decode(gout[:0], enc, len(gaps)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Section 5: retrieval query bandwidth ------------------------------------

func BenchmarkSection5Query(b *testing.B) {
	p := invfile.Profiles[1]
	p.Postings = 300_000
	c := invfile.Synthesize(p, 8)
	docs := invfile.NewDocTable(p.NumDocs)
	list := &c.Lists[0]
	for i := range c.Lists {
		if len(c.Lists[i].DocIDs) > len(list.DocIDs) {
			list = &c.Lists[i]
		}
	}
	prepared := invfile.Prepare(list)
	b.SetBytes(int64(4 * len(list.DocIDs)))
	for i := 0; i < b.N; i++ {
		invfile.TopNDocsPrepared(prepared, docs, 20)
	}
}

// --- Fine-grained access (Section 3.1) ----------------------------------------

func BenchmarkFineGrainedGet(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	const n = 1 << 20
	for _, rate := range []float64{0, 0.05, 0.3} {
		vals := experiments.SynthPFOR(rng, n, 8, rate)
		blk := core.CompressPFOR(vals, 0, 8)
		var d core.Decoder[int64]
		idx := make([]int, 4096)
		for i := range idx {
			idx[i] = rng.Intn(n)
		}
		b.Run(fmt.Sprintf("exc=%.2f", rate), func(b *testing.B) {
			var sink int64
			for i := 0; i < b.N; i++ {
				sink += d.Get(blk, idx[i&4095])
			}
			_ = sink
		})
	}
}
